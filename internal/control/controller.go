package control

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"padll/internal/clock"
	"padll/internal/policy"
	"padll/internal/posix"
	"padll/internal/rpcio"
	"padll/internal/stage"
)

// ControlRuleID is the rule/queue name the feedback loop manages on every
// stage.
const ControlRuleID = "padll-control"

// Controller is the control plane core. It maintains the stage registry,
// groups stages by job (§III-B: "orchestrating the stages that belong to
// the same job-ID as a single one"), serves administrator policy
// operations at per-job, group-of-jobs, and cluster-wide granularity, and
// runs the feedback control loop when an Algorithm is installed.
type Controller struct {
	clk clock.Clock

	mu           sync.Mutex
	stages       map[string]StageConn // by StageID
	reservations map[string]float64   // per-job reserved rate
	clusterLimit float64
	algorithm    Algorithm
	// controlled is the matcher template for the feedback loop's managed
	// queue on every stage.
	controlled policy.Matcher
	// limitAdapter, when set, retunes clusterLimit each loop iteration.
	limitAdapter LimitAdapter
	// groupBy derives the orchestration entity from a stage's identity;
	// the default groups by JobID (§III-B), but administrators may group
	// by user or project ("group of jobs" granularity).
	groupBy          func(stage.Info) string
	isDefaultGroupBy bool
	onError          func(stageID string, err error)
	lastAlloc        map[string]float64
	loopStop         chan struct{}
	loopDone         chan struct{}

	// collectWorkers bounds CollectAll's fan-out (default 8): the loop
	// tolerates slow stages without serializing behind them, but a
	// thousand-stage registry must not burst a thousand goroutines.
	collectWorkers int
	// pushWorkers bounds RunOnce's push fan-out the same way (default 8;
	// 1 forces sequential pushes in sorted order, which the chaos
	// harness relies on for deterministic fault injection).
	pushWorkers int
	// lastRound is the most recent RunOnce's accounting.
	lastRound RoundStats
	haveRound bool
	// evictAfter is the mark-sweep threshold: a stage whose collect/push
	// RPCs fail this many consecutive rounds is evicted from the registry
	// (0 disables eviction — dead stages are skipped but kept).
	evictAfter int
	// misses counts consecutive communication failures per stage (the
	// "mark" half of mark-sweep; any success clears the mark).
	misses map[string]int
	// adminRules and clusterRules remember administrator intent (the
	// aggregate rule, pre-split) per group and cluster-wide, so an
	// idempotent re-registration replays the last-known rule set onto a
	// restarted stage.
	adminRules   map[string]map[string]policy.Rule
	clusterRules map[string]policy.Rule

	// pipelined fuses each round's pushes with its collect
	// (WithPipelinedRounds); prevProbes carries the latest round's
	// probes across rounds so the fused push can skip stages already at
	// target.
	pipelined  bool
	prevProbes map[string]stageProbe

	// roundMu serializes collect rounds; it single-owns the scratch
	// below and is never held while taking mu (the fold inside takes mu
	// briefly via noteMiss/noteOK, so the order is roundMu then mu).
	roundMu sync.Mutex
	// collectBuf/collectErr are positional per-stage scratch reused
	// across rounds: slot i is fully overwritten each round, so a
	// steady-state collect keeps its Queues capacity and allocates
	// nothing per stage.
	collectBuf []stage.Stats
	collectErr []error

	// aggs is the aggregator registry; any entry switches RunOnce into
	// tree mode (see aggregator.go). shardSize > 0 (WithTopology) also
	// enables tree mode with auto-built in-process shards, optionally
	// borrowing (WithBorrowing) inside each.
	aggs         map[string]AggConn
	shardSize    int
	borrow       bool
	borrowBudget float64
	// registryRev counts stage registry mutations; topoRev is the
	// revision the auto-built topology last sharded, so a changed
	// registry reshards lazily at the next tree round.
	registryRev int
	topoRev     int
	// aggReplies/aggErrs are the tree round's positional per-shard
	// scratch, single-owned by roundMu like collectBuf/collectErr.
	aggReplies []rpcio.AggRoundReply
	aggErrs    []error
	aggGrants  [][]rpcio.JobGrant
}

// Option configures a Controller.
type Option func(*Controller)

// WithClusterLimit sets the maximum aggregate rate the algorithm may hand
// out (the paper's 300 KOps/s PFS metadata cap in §IV-B).
func WithClusterLimit(limit float64) Option {
	return func(c *Controller) { c.clusterLimit = limit }
}

// WithAlgorithm installs the control algorithm evaluated by the loop.
func WithAlgorithm(a Algorithm) Option {
	return func(c *Controller) { c.algorithm = a }
}

// WithControlledMatcher overrides which requests the managed queue
// throttles (default: metadata, directory, and ext-attr classes — the
// operations that land on the MDS).
func WithControlledMatcher(m policy.Matcher) Option {
	return func(c *Controller) { c.controlled = m }
}

// WithLimitAdapter installs a dynamic cluster-limit policy (e.g.
// AIMDLimit probing the MDS) applied at the start of every feedback-loop
// iteration.
func WithLimitAdapter(a LimitAdapter) Option {
	return func(c *Controller) { c.limitAdapter = a }
}

// WithGroupBy overrides how stages aggregate into orchestration entities
// for the feedback loop: the default is per job; GroupByUser implements
// the paper's "group of jobs" granularity by sharing one allocation among
// all of a user's jobs.
func WithGroupBy(f func(stage.Info) string) Option {
	return func(c *Controller) {
		c.groupBy = f
		c.isDefaultGroupBy = false
	}
}

// GroupByUser groups stages by submitting user.
func GroupByUser(info stage.Info) string { return info.User }

// WithErrorHandler installs a sink for stage-communication errors; the
// default drops them (a dead stage is simply skipped until it
// re-registers).
func WithErrorHandler(f func(stageID string, err error)) Option {
	return func(c *Controller) { c.onError = f }
}

// WithCollectConcurrency bounds how many stages CollectAll queries in
// parallel (default 8; 1 forces sequential collection).
func WithCollectConcurrency(n int) Option {
	return func(c *Controller) {
		if n > 0 {
			c.collectWorkers = n
		}
	}
}

// WithPushConcurrency bounds how many stages RunOnce pushes rates to in
// parallel (default 8; 1 forces sequential pushes in sorted job/stage
// order). Whatever the bound, push outcomes are folded in sorted order,
// so error reporting and eviction marks stay deterministic.
func WithPushConcurrency(n int) Option {
	return func(c *Controller) {
		if n > 0 {
			c.pushWorkers = n
		}
	}
}

// WithEvictAfter enables mark-sweep eviction: a stage that fails n
// consecutive control rounds is deregistered and its group's share
// released for redistribution. n <= 0 disables eviction.
func WithEvictAfter(n int) Option {
	return func(c *Controller) { c.evictAfter = n }
}

// WithPipelinedRounds fuses each RunOnce's push phase with its collect:
// the allocation computed at the end of round N rides round N+1's
// Stage.Batch exchange alongside the incremental collect, so a
// steady-state round costs one round trip per stage instead of two.
// The price is one round of staleness (a rate computed this round is
// enforced next round) and a coarser failure signal (a dead stage
// accrues one eviction mark per round, not two), which is why the
// two-phase loop stays the default — the chaos harness depends on its
// fault interleavings.
func WithPipelinedRounds() Option {
	return func(c *Controller) { c.pipelined = true }
}

// New returns a controller. A nil clk defaults to the wall clock (the
// loop timestamps its round accounting even when the caller never
// starts Run).
func New(clk clock.Clock, opts ...Option) *Controller {
	if clk == nil {
		clk = clock.NewReal()
	}
	c := &Controller{
		clk:          clk,
		stages:       make(map[string]StageConn),
		reservations: make(map[string]float64),
		controlled: policy.Matcher{Classes: []posix.Class{
			posix.ClassMetadata, posix.ClassDirectory, posix.ClassExtAttr,
		}},
		groupBy:          func(info stage.Info) string { return info.JobID },
		isDefaultGroupBy: true,
		onError:          func(string, error) {},
		lastAlloc:        make(map[string]float64),
		collectWorkers:   8,
		pushWorkers:      8,
		misses:           make(map[string]int),
		adminRules:       make(map[string]map[string]policy.Rule),
		clusterRules:     make(map[string]policy.Rule),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Clock exposes the controller's time source so collaborators (the HTTP
// monitor, reports) timestamp with the same clock the feedback loop runs
// on — real time in production, simulated time in experiment replays.
func (c *Controller) Clock() clock.Clock { return c.clk }

// ---- registry ----

// Register adds a stage to the registry. A stage re-registering under an
// existing ID (restart or reconnect after a network failure — the
// dependability case §VI highlights) replaces its previous connection,
// which is closed, and has its failure marks cleared. If an algorithm is
// active, the stage immediately receives the managed control queue — at
// its group's last-known per-stage allocation when one exists, so a
// restarted stage resumes the frozen rate rather than resetting to an
// equal share. Administrator rules recorded for the group (and
// cluster-wide) are replayed onto the connection, making re-registration
// idempotent: a stage that lost its state comes back with the last-known
// rule set.
func (c *Controller) Register(conn StageConn) error {
	info := conn.Info()
	id := info.StageID
	c.mu.Lock()
	old := c.stages[id]
	c.stages[id] = conn
	c.registryRev++
	delete(c.misses, id)
	alg := c.algorithm
	key := c.groupBy(info)
	rate, haveAlloc := 0.0, false
	if a, ok := c.lastAlloc[key]; ok {
		if n := len(c.stagesOfJobLocked(key)); n > 0 {
			rate, haveAlloc = a/float64(n), true
		}
	}
	replay := c.replayRulesLocked(key)
	c.mu.Unlock()

	if old != nil && old != conn {
		// A replaced connection's close error is unactionable here: the
		// new connection is already installed.
		_ = old.Close()
	}
	if alg != nil {
		// Without a recorded allocation, start at a conservative equal
		// share; the next loop iteration assigns the real rate.
		if !haveAlloc {
			rate = c.initialRate()
		}
		rule := c.managedRuleFor(key, rate)
		if bc, ok := conn.(BatchConn); ok {
			// Control rule plus the whole replay set in one round trip —
			// what keeps a re-registration storm (every stage reconnecting
			// after a controller restart) from multiplying into
			// rules×stages RPCs.
			ops := make([]rpcio.StageOp, 0, 1+len(replay))
			ops = append(ops, rpcio.StageOp{Kind: rpcio.OpApplyRule, Rule: rule})
			for _, r := range replay {
				ops = append(ops, rpcio.StageOp{Kind: rpcio.OpApplyRule, Rule: r})
			}
			if _, _, err := bc.ExecBatch(ops, false); err != nil {
				return fmt.Errorf("control: install rules on %s: %w", id, err)
			}
			return nil
		}
		if err := conn.ApplyRule(rule); err != nil {
			return fmt.Errorf("control: install control rule on %s: %w", id, err)
		}
	}
	for _, r := range replay {
		if err := conn.ApplyRule(r); err != nil {
			c.onError(id, fmt.Errorf("control: replay rule %s: %w", r.ID, err))
		}
	}
	return nil
}

// replayRulesLocked materializes the per-stage form of every recorded
// administrator rule a (re-)registering stage of group key should carry,
// in deterministic (ID-sorted) order. Rates are split by the group's
// current stage count, matching how the rules were originally pushed.
func (c *Controller) replayRulesLocked(key string) []policy.Rule {
	var out []policy.Rule
	if group := c.adminRules[key]; len(group) > 0 {
		n := len(c.stagesOfJobLocked(key))
		ids := make([]string, 0, len(group))
		for rid := range group {
			ids = append(ids, rid)
		}
		sort.Strings(ids)
		for _, rid := range ids {
			r := group[rid]
			if r.Rate != policy.Unlimited && n > 1 {
				r.Rate /= float64(n)
			}
			out = append(out, r)
		}
	}
	if len(c.clusterRules) > 0 {
		n := len(c.stages)
		ids := make([]string, 0, len(c.clusterRules))
		for rid := range c.clusterRules {
			ids = append(ids, rid)
		}
		sort.Strings(ids)
		for _, rid := range ids {
			r := c.clusterRules[rid]
			if r.Rate != policy.Unlimited && n > 1 {
				r.Rate /= float64(n)
			}
			out = append(out, r)
		}
	}
	return out
}

// groupKey derives the orchestration entity key for a stage.
func (c *Controller) groupKey(info stage.Info) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.groupBy(info)
}

// initialRate is the rate a just-registered job starts at before
// the first allocation round: an equal share of the cluster limit.
func (c *Controller) initialRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.jobIDsLocked())
	if n == 0 {
		n = 1
	}
	if c.clusterLimit <= 0 {
		return policy.Unlimited
	}
	return c.clusterLimit / float64(n)
}

// managedRuleFor builds the control rule for an entity's stages. Under
// the default grouping the matcher scopes by job-ID; custom groupings
// leave the matcher unscoped (each stage belongs to exactly one entity,
// so the queue's rate is the scoping).
func (c *Controller) managedRuleFor(key string, rate float64) policy.Rule {
	m := c.controlled
	if c.isDefaultGroupBy {
		m.JobID = key
	}
	return policy.Rule{ID: ControlRuleID, Match: m, Rate: rate}
}

// Deregister removes a stage (job completion, node failure, or
// eviction). When the stage was its group's last, the group's share is
// released — residual allocation, reservation, and recorded rules are
// dropped — so the next RunOnce redistributes the rate to the remaining
// jobs instead of holding it for a departed one.
func (c *Controller) Deregister(stageID string) bool {
	c.mu.Lock()
	conn, ok := c.stages[stageID]
	if ok {
		key := c.groupBy(conn.Info())
		delete(c.stages, stageID)
		c.registryRev++
		delete(c.misses, stageID)
		if len(c.stagesOfJobLocked(key)) == 0 {
			delete(c.lastAlloc, key)
			delete(c.reservations, key)
			delete(c.adminRules, key)
		}
	}
	c.mu.Unlock()
	if ok {
		// The stage is gone (job completion or node failure); its close
		// error carries no recovery path.
		_ = conn.Close()
	}
	return ok
}

// ErrEvicted is reported to the error handler for each stage removed by
// mark-sweep eviction.
var ErrEvicted = errors.New("control: stage evicted after repeated failures")

// EvictDead sweeps the registry: every stage whose consecutive-failure
// mark reached the eviction threshold is deregistered (releasing its
// group's share, see Deregister) and reported to the error handler with
// ErrEvicted. It returns the evicted stage IDs, sorted. RunOnce calls
// this between collect and allocate; it is exported for callers driving
// the loop manually.
func (c *Controller) EvictDead() []string {
	c.mu.Lock()
	threshold := c.evictAfter
	var ids []string
	if threshold > 0 {
		for id, n := range c.misses {
			if n >= threshold {
				ids = append(ids, id)
			}
		}
	}
	c.mu.Unlock()
	sort.Strings(ids)
	for _, id := range ids {
		if c.Deregister(id) {
			c.onError(id, ErrEvicted)
		}
	}
	return ids
}

// noteMiss marks one failed exchange with a stage; noteOK clears the
// mark.
func (c *Controller) noteMiss(stageID string) {
	c.mu.Lock()
	if _, ok := c.stages[stageID]; ok {
		c.misses[stageID]++
	}
	c.mu.Unlock()
}

func (c *Controller) noteOK(stageID string) {
	c.mu.Lock()
	delete(c.misses, stageID)
	c.mu.Unlock()
}

// Stages returns the registered stage identities, sorted by StageID.
func (c *Controller) Stages() []stage.Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]stage.Info, 0, len(c.stages))
	for _, conn := range c.stages {
		out = append(out, conn.Info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StageID < out[j].StageID })
	return out
}

// Jobs returns the distinct job IDs with at least one registered stage.
func (c *Controller) Jobs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobIDsLocked()
}

func (c *Controller) jobIDsLocked() []string {
	seen := map[string]bool{}
	var out []string
	for _, conn := range c.stages {
		j := c.groupBy(conn.Info())
		if !seen[j] {
			seen[j] = true
			out = append(out, j)
		}
	}
	sort.Strings(out)
	return out
}

// stagesOfJobLocked returns the connections serving an orchestration
// entity (a job under the default grouping).
func (c *Controller) stagesOfJobLocked(jobID string) []StageConn {
	var out []StageConn
	for _, conn := range c.stages {
		if c.groupBy(conn.Info()) == jobID {
			out = append(out, conn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Info().StageID < out[j].Info().StageID })
	return out
}

// ---- administrator operations (simple policies) ----

// ApplyRuleToJob installs a rule on every stage of one job (per-job
// granularity). The per-stage rate is the job rate divided by the job's
// stage count, so a distributed job's aggregate stays at the intent.
func (c *Controller) ApplyRuleToJob(jobID string, r policy.Rule) error {
	c.mu.Lock()
	conns := c.stagesOfJobLocked(jobID)
	if len(conns) > 0 {
		// Remember the aggregate intent so a restarted stage of this
		// group gets the rule replayed at re-registration.
		if c.adminRules[jobID] == nil {
			c.adminRules[jobID] = make(map[string]policy.Rule)
		}
		c.adminRules[jobID][r.ID] = r
	}
	c.mu.Unlock()
	if len(conns) == 0 {
		return fmt.Errorf("control: no stages for job %q", jobID)
	}
	perStage := r
	if r.Rate != policy.Unlimited && len(conns) > 1 {
		perStage.Rate = r.Rate / float64(len(conns))
	}
	for _, conn := range conns {
		if err := conn.ApplyRule(perStage); err != nil {
			return err
		}
	}
	return nil
}

// ApplyRuleToJobs installs a rule on a group of jobs (group granularity),
// splitting the rate equally across the jobs and then across each job's
// stages.
func (c *Controller) ApplyRuleToJobs(jobIDs []string, r policy.Rule) error {
	if len(jobIDs) == 0 {
		return fmt.Errorf("control: empty job group")
	}
	perJob := r
	if r.Rate != policy.Unlimited {
		perJob.Rate = r.Rate / float64(len(jobIDs))
	}
	for _, j := range jobIDs {
		if err := c.ApplyRuleToJob(j, perJob); err != nil {
			return err
		}
	}
	return nil
}

// ApplyRuleCluster installs a rule on every registered stage
// (cluster-wide granularity), splitting the rate across all stages.
func (c *Controller) ApplyRuleCluster(r policy.Rule) error {
	c.mu.Lock()
	conns := make([]StageConn, 0, len(c.stages))
	for _, conn := range c.stages {
		conns = append(conns, conn)
	}
	if len(conns) > 0 {
		c.clusterRules[r.ID] = r
	}
	c.mu.Unlock()
	if len(conns) == 0 {
		return fmt.Errorf("control: no registered stages")
	}
	perStage := r
	if r.Rate != policy.Unlimited && len(conns) > 1 {
		perStage.Rate = r.Rate / float64(len(conns))
	}
	for _, conn := range conns {
		if err := conn.ApplyRule(perStage); err != nil {
			return err
		}
	}
	return nil
}

// SetReservation records a job's reserved/priority rate used by
// FixedRates and ProportionalShare.
func (c *Controller) SetReservation(jobID string, rate float64) {
	c.mu.Lock()
	c.reservations[jobID] = rate
	c.mu.Unlock()
}

// SetAlgorithm swaps the control algorithm at runtime.
func (c *Controller) SetAlgorithm(a Algorithm) {
	c.mu.Lock()
	c.algorithm = a
	c.mu.Unlock()
}

// ---- feedback control loop ----

// JobSnapshot is one job's aggregated state from a collect round.
type JobSnapshot struct {
	JobID       string
	Stages      int
	Demand      float64 // aggregate arrival rate, ops/s
	Throughput  float64 // aggregate admitted rate, ops/s
	Allocated   float64 // rate granted by the last allocation
	Reservation float64
	// WaitP50/WaitP95/WaitP99 are the worst (max) control-queue shaping
	// wait percentiles across the job's stages, in seconds — the
	// queueing delay the current allocation is costing the job.
	WaitP50 float64
	WaitP95 float64
	WaitP99 float64
	// Degraded reports that at least one of the job's stages is running
	// in degraded mode (enforcing frozen limits without its controller);
	// DegradedStages counts them and DegradedSeconds is the worst
	// cumulative outage among them.
	Degraded        bool
	DegradedStages  int
	DegradedSeconds float64
	// FailedStages counts registered stages of the job that did not
	// answer this collect round (the snapshot is partial).
	FailedStages int
}

// runBounded runs fn(i) for every i in [0, n) on at most workers
// concurrent goroutines; workers <= 1 degenerates to a sequential loop
// in index order. Exactly min(workers, n) goroutines are spawned,
// pulling indices from a shared channel — a thousand-stage registry
// must not burst a thousand goroutines per round just to gate them on
// a semaphore.
func runBounded(n, workers int, fn func(int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	idx := make(chan int, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// stageProbe is what a collect round learns about one stage beyond the
// per-job aggregates: whether it answered, and the managed control
// queue's currently enforced limit. The push phase uses it to skip
// stages that already enforce the target rate and to spot stages that
// lost their managed queue.
type stageProbe struct {
	ok       bool
	hasCtl   bool
	ctlLimit float64
}

// CollectAll gathers statistics from every stage, aggregated per job
// (feedback-loop step 1). Stages are queried concurrently under a
// bounded worker pool, but results are folded in StageID order, so the
// output — and everything downstream of it — is deterministic. Stages
// that fail to respond are reported to the error handler, marked for
// eviction, and skipped: the loop runs on partial snapshots rather than
// blocking behind a dead peer.
func (c *Controller) CollectAll() []JobSnapshot {
	snaps, _ := c.collectRound(nil)
	return snaps
}

// roundSetup snapshots everything a collect round needs from under the
// registry lock: the sorted connection list and copies of the maps the
// fold reads.
func (c *Controller) roundSetup() (conns []StageConn, reservations, lastAlloc map[string]float64, groupBy func(stage.Info) string, workers int) {
	c.mu.Lock()
	conns = make([]StageConn, 0, len(c.stages))
	for _, conn := range c.stages {
		conns = append(conns, conn)
	}
	reservations = make(map[string]float64, len(c.reservations))
	for k, v := range c.reservations {
		reservations[k] = v
	}
	lastAlloc = make(map[string]float64, len(c.lastAlloc))
	for k, v := range c.lastAlloc {
		lastAlloc[k] = v
	}
	groupBy = c.groupBy
	workers = c.collectWorkers
	c.mu.Unlock()
	sort.Slice(conns, func(i, j int) bool { return conns[i].Info().StageID < conns[j].Info().StageID })
	return conns, reservations, lastAlloc, groupBy, workers
}

// roundScratch sizes the positional collect scratch for n stages.
// Caller must hold roundMu.
func (c *Controller) roundScratch(n int) ([]stage.Stats, []error) {
	for len(c.collectBuf) < n {
		c.collectBuf = append(c.collectBuf, stage.Stats{})
	}
	for len(c.collectErr) < n {
		c.collectErr = append(c.collectErr, nil)
	}
	return c.collectBuf[:n], c.collectErr[:n]
}

// collectConn gathers one stage's statistics into caller-owned dst,
// using the allocation-free CollectInto extension when the connection
// offers it.
func collectConn(conn StageConn, dst *stage.Stats) error {
	if ci, ok := conn.(CollectIntoConn); ok {
		return ci.CollectInto(dst)
	}
	st, err := conn.Collect()
	if err == nil {
		*dst = st
	}
	return err
}

// collectRound is CollectAll plus the per-stage probes RunOnce's push
// phase wants; rs (when non-nil) accumulates round accounting.
func (c *Controller) collectRound(rs *RoundStats) ([]JobSnapshot, map[string]stageProbe) {
	conns, reservations, lastAlloc, groupBy, workers := c.roundSetup()

	c.roundMu.Lock()
	defer c.roundMu.Unlock()
	buf, errs := c.roundScratch(len(conns))
	runBounded(len(conns), workers, func(i int) {
		errs[i] = collectConn(conns[i], &buf[i])
	})
	return c.foldCollect(conns, buf, errs, reservations, lastAlloc, groupBy, rs)
}

// foldCollect aggregates a round's per-stage results (positional in
// conns order) into per-job snapshots and per-stage probes, folding in
// StageID order so the output is deterministic whatever the worker
// interleaving was. Failures are reported, marked for eviction, and
// skipped.
func (c *Controller) foldCollect(conns []StageConn, buf []stage.Stats, errs []error,
	reservations, lastAlloc map[string]float64, groupBy func(stage.Info) string,
	rs *RoundStats) ([]JobSnapshot, map[string]stageProbe) {
	probes := make(map[string]stageProbe, len(conns))
	agg := map[string]*JobSnapshot{}
	failed := map[string]int{}
	for i, conn := range conns {
		info := conn.Info()
		key := groupBy(info)
		if err := errs[i]; err != nil {
			c.onError(info.StageID, err)
			c.noteMiss(info.StageID)
			failed[key]++
			if rs != nil {
				rs.CollectCalls++
				rs.CollectFailures++
			}
			continue
		}
		c.noteOK(info.StageID)
		if rs != nil {
			rs.CollectCalls++
		}
		probe := stageProbe{ok: true}
		st := &buf[i]
		snap, ok := agg[key]
		if !ok {
			snap = &JobSnapshot{
				JobID:       key,
				Reservation: reservations[key],
				Allocated:   lastAlloc[key],
			}
			agg[key] = snap
		}
		snap.Stages++
		if st.Degraded {
			snap.Degraded = true
			snap.DegradedStages++
			if st.DegradedSeconds > snap.DegradedSeconds {
				snap.DegradedSeconds = st.DegradedSeconds
			}
		}
		for _, q := range st.Queues {
			if q.RuleID == ControlRuleID {
				probe.hasCtl = true
				probe.ctlLimit = q.Limit
				snap.Demand += q.DemandRate
				snap.Throughput += q.ThroughputRate
				if q.WaitP50 > snap.WaitP50 {
					snap.WaitP50 = q.WaitP50
				}
				if q.WaitP95 > snap.WaitP95 {
					snap.WaitP95 = q.WaitP95
				}
				if q.WaitP99 > snap.WaitP99 {
					snap.WaitP99 = q.WaitP99
				}
			}
		}
		probes[info.StageID] = probe
	}
	out := make([]JobSnapshot, 0, len(agg))
	for key, s := range agg {
		s.FailedStages = failed[key]
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out, probes
}

// RoundStats is one RunOnce iteration's accounting: how many round
// trips the feedback loop cost at the current fleet size, and what the
// delta protocol saved. The monitor and padll-controller's report
// surface it; experiment E8 sweeps it against stage count.
type RoundStats struct {
	// Stages is the number of registered stages when the round began.
	Stages int
	// CollectCalls counts collect round trips issued (one per stage);
	// CollectFailures counts the ones that errored.
	CollectCalls    int
	CollectFailures int
	// PushCalls counts push-phase round trips; PushOps the operations
	// they carried (a reinstall adds an op without a round trip on the
	// batched path).
	PushCalls int
	PushOps   int
	// PushesSkipped counts stages whose collect probe showed the target
	// rate already enforced, so no push RPC was issued at all — the
	// delta protocol's steady-state win.
	PushesSkipped int
	// Duration is the wall (or simulated) time the round took.
	Duration time.Duration
	// BytesRead/BytesWritten are the controller-side wire traffic this
	// round across connections that account it (TCP transports).
	BytesRead    uint64
	BytesWritten uint64
	// Aggregators is the shard count of a tree-mode round (0 in flat
	// mode); TokensBorrowed/Repaid/Forgiven sum the shards' lifetime
	// borrow-pool movement as of this round's collect.
	Aggregators    int
	TokensBorrowed float64
	TokensRepaid   float64
	TokensForgiven float64
}

// RPCs is the round's total round trips.
func (r RoundStats) RPCs() int { return r.CollectCalls + r.PushCalls }

// LastRound reports the most recent RunOnce's accounting; ok is false
// before the first completed round.
func (c *Controller) LastRound() (rs RoundStats, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastRound, c.haveRound
}

// wireSample snapshots the traffic counters of every registered
// connection that exposes them, so a round's byte cost is the
// difference of two samples.
func (c *Controller) wireSample() ([]WireStatser, []rpcio.WireStats) {
	c.mu.Lock()
	var ws []WireStatser
	for _, conn := range c.stages {
		if w, ok := conn.(WireStatser); ok {
			ws = append(ws, w)
		}
	}
	c.mu.Unlock()
	before := make([]rpcio.WireStats, len(ws))
	for i, w := range ws {
		before[i] = w.WireStats()
	}
	return ws, before
}

// pushPlan is one stage's intent for a round's push phase.
type pushPlan struct {
	conn    StageConn
	stageID string
	jobID   string
	rate    float64
}

// buildPushPlans materializes the per-stage push intents for an
// allocation, in sorted job order (stagesOfJobLocked already sorts
// within a job): a crash mid-push then partitions the fleet the same
// way on every same-seed run, which the chaos determinism tests rely
// on.
func (c *Controller) buildPushPlans(alloc map[string]float64) []pushPlan {
	c.mu.Lock()
	plansByJob := make(map[string][]StageConn, len(alloc))
	for jobID := range alloc {
		plansByJob[jobID] = c.stagesOfJobLocked(jobID)
	}
	c.mu.Unlock()
	jobIDs := make([]string, 0, len(plansByJob))
	for jobID := range plansByJob {
		jobIDs = append(jobIDs, jobID)
	}
	sort.Strings(jobIDs)
	var plans []pushPlan
	for _, jobID := range jobIDs {
		conns := plansByJob[jobID]
		if len(conns) == 0 {
			continue
		}
		perStage := alloc[jobID] / float64(len(conns))
		for _, conn := range conns {
			plans = append(plans, pushPlan{conn: conn, stageID: conn.Info().StageID, jobID: jobID, rate: perStage})
		}
	}
	return plans
}

// pushOpFor chooses the batched push operation for one stage given its
// latest probe: skip when the probe already shows the target rate
// enforced, reinstall when the stage answered collect without the
// managed queue (restarted), retune otherwise.
func (c *Controller) pushOpFor(probe stageProbe, jobID string, rate float64) (op rpcio.StageOp, skip bool) {
	if probe.ok && probe.hasCtl && probe.ctlLimit == rate {
		return rpcio.StageOp{}, true
	}
	if probe.ok && !probe.hasCtl {
		return rpcio.StageOp{Kind: rpcio.OpApplyRule, Rule: c.managedRuleFor(jobID, rate)}, false
	}
	return rpcio.StageOp{Kind: rpcio.OpSetRate, ID: ControlRuleID, Rate: rate}, false
}

// RunOnce executes one feedback-loop iteration: collect, allocate, and
// push per-stage rates. It returns the per-job allocation for reporting.
// It is a no-op (returning nil) when no algorithm is installed.
//
// Both wire-heavy phases are fleet-scale aware: collects use the
// incremental delta protocol on connections that support it, and pushes
// run under a bounded worker pool (WithPushConcurrency), batch their
// operations per stage, and are skipped outright for stages whose
// collect probe shows the target rate already enforced. Push outcomes
// are folded in sorted job/stage order regardless of the concurrency
// bound, preserving the determinism contract the chaos harness checks.
// Under WithPipelinedRounds the two phases fuse into one round trip per
// stage; see runOncePipelined.
func (c *Controller) RunOnce() map[string]float64 {
	if c.treeEnabled() {
		return c.runOnceTree()
	}
	c.mu.Lock()
	pipelined := c.pipelined
	c.mu.Unlock()
	if pipelined {
		return c.runOncePipelined()
	}

	c.mu.Lock()
	alg := c.algorithm
	if c.limitAdapter != nil {
		c.clusterLimit = c.limitAdapter.AdjustLimit(c.clusterLimit)
	}
	limit := c.clusterLimit
	pushWorkers := c.pushWorkers
	stages := len(c.stages)
	c.mu.Unlock()
	if alg == nil {
		return nil
	}

	start := c.clk.Now()
	rs := RoundStats{Stages: stages}
	wireConns, wireBefore := c.wireSample()

	snaps, probes := c.collectRound(&rs)
	// Sweep before allocating: stages past the eviction threshold leave
	// the registry now, so the per-stage split below divides a job's
	// grant among its live stages only instead of letting a dead one
	// hold its share.
	c.EvictDead()
	jobs := make([]JobState, 0, len(snaps))
	for _, s := range snaps {
		jobs = append(jobs, JobState{
			JobID:       s.JobID,
			Demand:      s.Demand,
			Reservation: s.Reservation,
			Stages:      s.Stages,
		})
	}
	alloc := alg.Allocate(limit, jobs)

	c.mu.Lock()
	c.lastAlloc = alloc
	c.mu.Unlock()
	plans := c.buildPushPlans(alloc)

	type pushOutcome struct {
		err     error
		calls   int
		ops     int
		skipped bool
	}
	outcomes := make([]pushOutcome, len(plans))
	runBounded(len(plans), pushWorkers, func(i int) {
		p := plans[i]
		bc, batched := p.conn.(BatchConn)
		if !batched {
			// Per-call path: exactly the pre-batch protocol, including a
			// push every round (its own liveness signal for conns without
			// probes).
			found, err := p.conn.SetRate(ControlRuleID, p.rate)
			out := pushOutcome{err: err, calls: 1, ops: 1}
			if err == nil && !found {
				// The stage lost its managed queue (e.g. restarted):
				// reinstall it.
				out.err = p.conn.ApplyRule(c.managedRuleFor(p.jobID, p.rate))
				out.calls++
				out.ops++
			}
			outcomes[i] = out
			return
		}
		op, skip := c.pushOpFor(probes[p.stageID], p.jobID, p.rate)
		if skip {
			// The collect half of this round's batch already proved the
			// stage enforces exactly this rate: nothing needs to cross
			// the wire.
			outcomes[i] = pushOutcome{skipped: true}
			return
		}
		res, _, err := bc.ExecBatch([]rpcio.StageOp{op}, false)
		out := pushOutcome{err: err, calls: 1, ops: 1}
		if err == nil && op.Kind == rpcio.OpSetRate && len(res) == 1 && !res[0].Found {
			// Lost a race with a stage restart between collect and push:
			// reinstall.
			reinstall := rpcio.StageOp{Kind: rpcio.OpApplyRule, Rule: c.managedRuleFor(p.jobID, p.rate)}
			_, _, err = bc.ExecBatch([]rpcio.StageOp{reinstall}, false)
			out.err = err
			out.calls++
			out.ops++
		}
		outcomes[i] = out
	})

	// Fold outcomes in plan (sorted) order: error reporting and eviction
	// marks are deterministic whatever the worker interleaving was.
	for i, p := range plans {
		o := outcomes[i]
		rs.PushCalls += o.calls
		rs.PushOps += o.ops
		if o.skipped {
			rs.PushesSkipped++
			continue
		}
		if o.err != nil {
			c.onError(p.stageID, o.err)
			c.noteMiss(p.stageID)
		}
	}

	rs.Duration = c.clk.Now().Sub(start)
	for i, w := range wireConns {
		after := w.WireStats()
		rs.BytesRead += after.BytesRead - wireBefore[i].BytesRead
		rs.BytesWritten += after.BytesWritten - wireBefore[i].BytesWritten
	}
	c.mu.Lock()
	c.lastRound = rs
	c.haveRound = true
	c.mu.Unlock()
	return alloc
}

// execBatchCollect runs a fused push+collect exchange, materializing
// the snapshot into caller-owned dst when the connection supports it.
func execBatchCollect(bc BatchConn, ops []rpcio.StageOp, dst *stage.Stats) ([]rpcio.OpResult, error) {
	if bi, ok := bc.(BatchIntoConn); ok {
		return bi.ExecBatchInto(ops, true, dst)
	}
	res, st, err := bc.ExecBatch(ops, true)
	if err == nil {
		*dst = st
	}
	return res, err
}

// runOncePipelined is RunOnce with the push and collect phases fused:
// the allocation computed at the end of the previous round rides this
// round's Stage.Batch exchange alongside the incremental collect, so a
// steady-state round costs one round trip per stage instead of two.
//
// Accounting in fused mode: the fused exchange counts as a collect
// call; PushOps counts the operations it carried; PushCalls counts only
// the extra round trips (reinstall retries, per-call fallbacks);
// PushesSkipped keeps its meaning. A stage whose fused exchange fails
// accrues one eviction mark for the round (the two-phase loop charges
// two: one per phase).
func (c *Controller) runOncePipelined() map[string]float64 {
	c.mu.Lock()
	alg := c.algorithm
	if c.limitAdapter != nil {
		c.clusterLimit = c.limitAdapter.AdjustLimit(c.clusterLimit)
	}
	limit := c.clusterLimit
	stages := len(c.stages)
	prevAlloc := make(map[string]float64, len(c.lastAlloc))
	for k, v := range c.lastAlloc {
		prevAlloc[k] = v
	}
	prevProbes := c.prevProbes
	c.mu.Unlock()
	if alg == nil {
		return nil
	}

	start := c.clk.Now()
	rs := RoundStats{Stages: stages}
	wireConns, wireBefore := c.wireSample()

	// This round enacts the allocation the previous round computed; the
	// first round has none and is collect-only.
	plans := c.buildPushPlans(prevAlloc)
	planBy := make(map[string]pushPlan, len(plans))
	for _, p := range plans {
		planBy[p.stageID] = p
	}

	conns, reservations, lastAlloc, groupBy, workers := c.roundSetup()

	type fusedOutcome struct {
		pushErr error
		calls   int // extra round trips beyond the fused exchange
		ops     int
		skipped bool
	}
	outcomes := make([]fusedOutcome, len(conns))
	c.roundMu.Lock()
	buf, errs := c.roundScratch(len(conns))
	runBounded(len(conns), workers, func(i int) {
		conn := conns[i]
		id := conn.Info().StageID
		p, hasPlan := planBy[id]
		out := &outcomes[i]
		bc, batched := conn.(BatchConn)
		if !batched {
			// Per-call peers can't fuse: push then collect, two round
			// trips in one loop slot.
			if hasPlan {
				found, err := conn.SetRate(ControlRuleID, p.rate)
				out.calls, out.ops = 1, 1
				if err == nil && !found {
					err = conn.ApplyRule(c.managedRuleFor(p.jobID, p.rate))
					out.calls++
					out.ops++
				}
				out.pushErr = err
			}
			errs[i] = collectConn(conn, &buf[i])
			return
		}
		var ops []rpcio.StageOp
		var op rpcio.StageOp
		if hasPlan {
			var skip bool
			op, skip = c.pushOpFor(prevProbes[id], p.jobID, p.rate)
			if skip {
				out.skipped = true
			} else {
				ops = append(ops, op)
				out.ops++
			}
		}
		res, err := execBatchCollect(bc, ops, &buf[i])
		errs[i] = err
		if err == nil && len(ops) == 1 && op.Kind == rpcio.OpSetRate && len(res) == 1 && !res[0].Found {
			// Lost a race with a stage restart since the probe was
			// taken: reinstall in an extra round trip.
			reinstall := rpcio.StageOp{Kind: rpcio.OpApplyRule, Rule: c.managedRuleFor(p.jobID, p.rate)}
			_, _, rerr := bc.ExecBatch([]rpcio.StageOp{reinstall}, false)
			out.pushErr = rerr
			out.calls++
			out.ops++
		}
	})
	snaps, probes := c.foldCollect(conns, buf, errs, reservations, lastAlloc, groupBy, &rs)
	c.roundMu.Unlock()

	// Fold fused outcomes in sorted (conns) order, mirroring the
	// two-phase loop's determinism contract.
	for i, conn := range conns {
		o := outcomes[i]
		rs.PushCalls += o.calls
		rs.PushOps += o.ops
		if o.skipped {
			rs.PushesSkipped++
			continue
		}
		if o.pushErr != nil {
			id := conn.Info().StageID
			c.onError(id, o.pushErr)
			c.noteMiss(id)
		}
	}

	c.EvictDead()
	jobs := make([]JobState, 0, len(snaps))
	for _, s := range snaps {
		jobs = append(jobs, JobState{
			JobID:       s.JobID,
			Demand:      s.Demand,
			Reservation: s.Reservation,
			Stages:      s.Stages,
		})
	}
	alloc := alg.Allocate(limit, jobs)

	rs.Duration = c.clk.Now().Sub(start)
	for i, w := range wireConns {
		after := w.WireStats()
		rs.BytesRead += after.BytesRead - wireBefore[i].BytesRead
		rs.BytesWritten += after.BytesWritten - wireBefore[i].BytesWritten
	}
	c.mu.Lock()
	c.lastAlloc = alloc
	c.prevProbes = probes
	c.lastRound = rs
	c.haveRound = true
	c.mu.Unlock()
	return alloc
}

// Run executes the feedback loop every interval until Stop is called.
func (c *Controller) Run(interval time.Duration) {
	c.mu.Lock()
	if c.loopStop != nil {
		c.mu.Unlock()
		return // already running
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	c.loopStop, c.loopDone = stop, done
	c.mu.Unlock()

	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case <-c.clk.After(interval):
				c.RunOnce()
			}
		}
	}()
}

// Stop halts the feedback loop started by Run.
func (c *Controller) Stop() {
	c.mu.Lock()
	stop, done := c.loopStop, c.loopDone
	c.loopStop, c.loopDone = nil, nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// ClusterLimit returns the current cluster-wide limit (which a
// LimitAdapter may be moving).
func (c *Controller) ClusterLimit() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clusterLimit
}

// LastAllocation returns the most recent per-job allocation.
func (c *Controller) LastAllocation() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.lastAlloc))
	for k, v := range c.lastAlloc {
		out[k] = v
	}
	return out
}

// ---- network server ----

// Server exposes a Controller on the network: a registrar endpoint
// stages dial at job start; the controller dials back to each stage's
// control service.
type Server struct {
	ctl      *Controller
	stopReg  func()
	listener net.Listener
}

// Serve starts the registration listener on addr (e.g. "127.0.0.1:0").
func (c *Controller) Serve(addr string) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("control: listen %s: %w", addr, err)
	}
	s := &Server{ctl: c, listener: l}
	s.stopReg = rpcio.ServeRegistrar(l,
		func(reg rpcio.Registration) error {
			h, err := rpcio.DialStage(reg.Addr)
			if err != nil {
				return err
			}
			return c.Register(NewRemoteConn(reg.Info, h))
		},
		func(stageID string) { c.Deregister(stageID) },
	)
	return s, nil
}

// Addr returns the registrar's listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops the registrar listener.
func (s *Server) Close() { s.stopReg() }
