package control

import (
	"padll/internal/policy"
	"padll/internal/rpcio"
	"padll/internal/stage"
)

// StageConn abstracts the control plane's channel to one data-plane
// stage. Remote stages use the net/rpc transport (rpcio); the cluster
// simulator and tests drive in-process stages directly. Either way the
// control plane's logic is identical — the property that lets the same
// control algorithms run against live and simulated clusters.
type StageConn interface {
	// Info returns the stage's registration identity.
	Info() stage.Info
	// ApplyRule installs or updates a rule/queue.
	ApplyRule(r policy.Rule) error
	// RemoveRule deletes a rule, reporting whether it existed.
	RemoveRule(id string) (bool, error)
	// SetRate retunes a queue, reporting whether the rule existed.
	SetRate(id string, rate float64) (bool, error)
	// Collect snapshots the stage's statistics.
	Collect() (stage.Stats, error)
	// SetMode switches Enforce/Passthrough.
	SetMode(m stage.Mode) error
	// Close releases the connection.
	Close() error
}

// LocalConn drives an in-process stage directly.
type LocalConn struct {
	Stg *stage.Stage
}

var _ StageConn = (*LocalConn)(nil)

// Info implements StageConn.
func (c *LocalConn) Info() stage.Info { return c.Stg.Info() }

// ApplyRule implements StageConn.
func (c *LocalConn) ApplyRule(r policy.Rule) error {
	c.Stg.ApplyRule(r)
	return nil
}

// RemoveRule implements StageConn.
func (c *LocalConn) RemoveRule(id string) (bool, error) {
	return c.Stg.RemoveRule(id), nil
}

// SetRate implements StageConn.
func (c *LocalConn) SetRate(id string, rate float64) (bool, error) {
	return c.Stg.SetRate(id, rate), nil
}

// Collect implements StageConn.
func (c *LocalConn) Collect() (stage.Stats, error) {
	return c.Stg.Collect(), nil
}

// SetMode implements StageConn.
func (c *LocalConn) SetMode(m stage.Mode) error {
	c.Stg.SetMode(m)
	return nil
}

// Close implements StageConn.
func (c *LocalConn) Close() error { return nil }

// RemoteConn drives a stage over the RPC transport.
type RemoteConn struct {
	info   stage.Info
	handle *rpcio.StageHandle
}

var _ StageConn = (*RemoteConn)(nil)

// NewRemoteConn wraps a dialed stage handle with its registered identity.
func NewRemoteConn(info stage.Info, handle *rpcio.StageHandle) *RemoteConn {
	return &RemoteConn{info: info, handle: handle}
}

// Info implements StageConn.
func (c *RemoteConn) Info() stage.Info { return c.info }

// ApplyRule implements StageConn.
func (c *RemoteConn) ApplyRule(r policy.Rule) error { return c.handle.ApplyRule(r) }

// RemoveRule implements StageConn.
func (c *RemoteConn) RemoveRule(id string) (bool, error) { return c.handle.RemoveRule(id) }

// SetRate implements StageConn.
func (c *RemoteConn) SetRate(id string, rate float64) (bool, error) {
	return c.handle.SetRate(id, rate)
}

// Collect implements StageConn.
func (c *RemoteConn) Collect() (stage.Stats, error) { return c.handle.Collect() }

// SetMode implements StageConn.
func (c *RemoteConn) SetMode(m stage.Mode) error { return c.handle.SetMode(m) }

// Close implements StageConn.
func (c *RemoteConn) Close() error { return c.handle.Close() }
