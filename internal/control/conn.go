package control

import (
	"padll/internal/policy"
	"padll/internal/rpcio"
	"padll/internal/stage"
)

// StageConn abstracts the control plane's channel to one data-plane
// stage. Remote stages use the net/rpc transport (rpcio); the cluster
// simulator and tests drive in-process stages directly. Either way the
// control plane's logic is identical — the property that lets the same
// control algorithms run against live and simulated clusters.
type StageConn interface {
	// Info returns the stage's registration identity.
	Info() stage.Info
	// ApplyRule installs or updates a rule/queue.
	ApplyRule(r policy.Rule) error
	// RemoveRule deletes a rule, reporting whether it existed.
	RemoveRule(id string) (bool, error)
	// SetRate retunes a queue, reporting whether the rule existed.
	SetRate(id string, rate float64) (bool, error)
	// Collect snapshots the stage's statistics.
	Collect() (stage.Stats, error)
	// SetMode switches Enforce/Passthrough.
	SetMode(m stage.Mode) error
	// Close releases the connection.
	Close() error
}

// LocalConn drives an in-process stage directly.
type LocalConn struct {
	Stg *stage.Stage
}

var _ StageConn = (*LocalConn)(nil)

// Info implements StageConn.
func (c *LocalConn) Info() stage.Info { return c.Stg.Info() }

// ApplyRule implements StageConn.
func (c *LocalConn) ApplyRule(r policy.Rule) error {
	c.Stg.ApplyRule(r)
	return nil
}

// RemoveRule implements StageConn.
func (c *LocalConn) RemoveRule(id string) (bool, error) {
	return c.Stg.RemoveRule(id), nil
}

// SetRate implements StageConn.
func (c *LocalConn) SetRate(id string, rate float64) (bool, error) {
	return c.Stg.SetRate(id, rate), nil
}

// Collect implements StageConn.
func (c *LocalConn) Collect() (stage.Stats, error) {
	return c.Stg.Collect(), nil
}

// SetMode implements StageConn.
func (c *LocalConn) SetMode(m stage.Mode) error {
	c.Stg.SetMode(m)
	return nil
}

// Close implements StageConn.
func (c *LocalConn) Close() error { return nil }

// BatchConn is the optional StageConn extension for peers speaking the
// batched delta protocol: a round's operations (and optionally a
// statistics collect) execute in one round trip. The controller type-
// asserts for it and falls back to per-call RPCs, so wrappers that hide
// it (fault injectors, legacy adapters) transparently select the
// per-call path.
type BatchConn interface {
	StageConn
	// ExecBatch executes ops (and an incremental collect when collect
	// is set) in one round trip; st is the merged full snapshot.
	ExecBatch(ops []rpcio.StageOp, collect bool) (results []rpcio.OpResult, st stage.Stats, err error)
}

// BatchIntoConn extends BatchConn with caller-owned collect storage,
// the shape the pipelined round loop wants: one fused push+collect
// exchange that materializes into a reusable buffer.
type BatchIntoConn interface {
	BatchConn
	// ExecBatchInto is ExecBatch writing the merged snapshot into dst
	// (fully overwritten, capacity reused); dst may be nil when collect
	// is false.
	ExecBatchInto(ops []rpcio.StageOp, collect bool, dst *stage.Stats) ([]rpcio.OpResult, error)
}

// WireStatser is the optional StageConn extension for transports that
// account their traffic; the controller sums it into RoundStats.
type WireStatser interface {
	WireStats() rpcio.WireStats
}

// CollectIntoConn is the optional StageConn extension for peers that can
// materialize a collect into caller-owned storage. The controller's
// round loop uses it with per-slot reusable buffers, so a steady-state
// thousand-stage collect allocates nothing; conns without it fall back
// to Collect. Like BatchConn, wrappers that embed an implementation and
// override Collect to inject failures hide it only if they don't embed
// a CollectIntoConn — which is why LocalConn deliberately omits it:
// interface promotion would otherwise route the controller around every
// embedding wrapper's Collect override.
type CollectIntoConn interface {
	// CollectInto overwrites dst with the stage's statistics, reusing
	// dst's backing capacity.
	CollectInto(dst *stage.Stats) error
}

// DeltaConn is the optional StageConn extension for peers whose collect
// can report "nothing changed since your last collect" and skip
// re-materializing. The caller must keep dst alive between calls: when
// changed is false, dst is left holding the previous materialization,
// which is exactly the current snapshot. The aggregator uses it with
// its persistent per-member stats slots, so a steady-state shard round
// re-copies no stats and re-folds no rows. Like BatchConn, LocalConn
// deliberately omits it so fault-injecting wrappers aren't bypassed.
type DeltaConn interface {
	CollectChangedInto(dst *stage.Stats) (changed bool, err error)
}

// RemoteConn drives a stage over the RPC transport, using the batched
// delta protocol: Collect rides Stage.Batch and after the first
// exchange only changed queues cross the wire.
type RemoteConn struct {
	info   stage.Info
	handle *rpcio.StageHandle
}

var (
	_ StageConn       = (*RemoteConn)(nil)
	_ BatchConn       = (*RemoteConn)(nil)
	_ BatchIntoConn   = (*RemoteConn)(nil)
	_ WireStatser     = (*RemoteConn)(nil)
	_ CollectIntoConn = (*RemoteConn)(nil)
	_ DeltaConn       = (*RemoteConn)(nil)
)

// NewRemoteConn wraps a dialed stage handle with its registered identity.
func NewRemoteConn(info stage.Info, handle *rpcio.StageHandle) *RemoteConn {
	return &RemoteConn{info: info, handle: handle}
}

// Info implements StageConn.
func (c *RemoteConn) Info() stage.Info { return c.info }

// ApplyRule implements StageConn.
func (c *RemoteConn) ApplyRule(r policy.Rule) error { return c.handle.ApplyRule(r) }

// RemoveRule implements StageConn.
func (c *RemoteConn) RemoveRule(id string) (bool, error) { return c.handle.RemoveRule(id) }

// SetRate implements StageConn.
func (c *RemoteConn) SetRate(id string, rate float64) (bool, error) {
	return c.handle.SetRate(id, rate)
}

// Collect implements StageConn over the incremental protocol.
func (c *RemoteConn) Collect() (stage.Stats, error) { return c.handle.CollectDelta() }

// CollectInto implements CollectIntoConn over the incremental protocol.
func (c *RemoteConn) CollectInto(dst *stage.Stats) error {
	return c.handle.CollectDeltaInto(dst)
}

// CollectChangedInto implements DeltaConn over the incremental protocol.
func (c *RemoteConn) CollectChangedInto(dst *stage.Stats) (bool, error) {
	_, changed, err := c.handle.ExecBatchChangedInto(nil, true, dst)
	return changed, err
}

// ExecBatch implements BatchConn.
func (c *RemoteConn) ExecBatch(ops []rpcio.StageOp, collect bool) ([]rpcio.OpResult, stage.Stats, error) {
	return c.handle.ExecBatch(ops, collect)
}

// ExecBatchInto implements BatchIntoConn.
func (c *RemoteConn) ExecBatchInto(ops []rpcio.StageOp, collect bool, dst *stage.Stats) ([]rpcio.OpResult, error) {
	return c.handle.ExecBatchInto(ops, collect, dst)
}

// WireStats implements WireStatser.
func (c *RemoteConn) WireStats() rpcio.WireStats { return c.handle.WireStats() }

// SetMode implements StageConn.
func (c *RemoteConn) SetMode(m stage.Mode) error { return c.handle.SetMode(m) }

// Close implements StageConn.
func (c *RemoteConn) Close() error { return c.handle.Close() }

// PerCallConn drives a stage with the PR-4-era per-call protocol: one
// RPC per operation and full-snapshot collects. It exists as the
// measured baseline for the batched protocol (experiments, benchmarks)
// and as an escape hatch against stages running an older service.
type PerCallConn struct {
	info   stage.Info
	handle *rpcio.StageHandle
}

var (
	_ StageConn   = (*PerCallConn)(nil)
	_ WireStatser = (*PerCallConn)(nil)
)

// NewPerCallConn wraps a dialed stage handle with its registered
// identity, speaking only per-call RPCs.
func NewPerCallConn(info stage.Info, handle *rpcio.StageHandle) *PerCallConn {
	return &PerCallConn{info: info, handle: handle}
}

// Info implements StageConn.
func (c *PerCallConn) Info() stage.Info { return c.info }

// ApplyRule implements StageConn.
func (c *PerCallConn) ApplyRule(r policy.Rule) error { return c.handle.ApplyRule(r) }

// RemoveRule implements StageConn.
func (c *PerCallConn) RemoveRule(id string) (bool, error) { return c.handle.RemoveRule(id) }

// SetRate implements StageConn.
func (c *PerCallConn) SetRate(id string, rate float64) (bool, error) {
	return c.handle.SetRate(id, rate)
}

// Collect implements StageConn with a full-snapshot RPC.
func (c *PerCallConn) Collect() (stage.Stats, error) { return c.handle.Collect() }

// WireStats implements WireStatser.
func (c *PerCallConn) WireStats() rpcio.WireStats { return c.handle.WireStats() }

// SetMode implements StageConn.
func (c *PerCallConn) SetMode(m stage.Mode) error { return c.handle.SetMode(m) }

// Close implements StageConn.
func (c *PerCallConn) Close() error { return c.handle.Close() }
