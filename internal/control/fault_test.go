package control

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"padll/internal/clock"
	"padll/internal/policy"
	"padll/internal/stage"
)

// ruleRate returns the rate of a stage's rule by ID (-1 when absent).
func ruleRate(s *stage.Stage, id string) float64 {
	for _, r := range s.Rules() {
		if r.ID == id {
			return r.Rate
		}
	}
	return -1
}

// TestDeregisterReleasesShare is the regression test for the share-leak:
// before the fix, a departed job's last allocation (and reservation)
// stayed recorded forever, so LastAllocation and the monitor kept
// reporting a grant for a job with no stages — and with no algorithm
// installed, nothing would ever redistribute it.
func TestDeregisterReleasesShare(t *testing.T) {
	clk := clock.NewSim(epoch)
	c := New(clk, WithClusterLimit(8000), WithAlgorithm(StaticEqualShare{}))
	_, c1 := localStage("s1", "jobA", clk)
	_, c2 := localStage("s2", "jobB", clk)
	if err := c.Register(c1); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(c2); err != nil {
		t.Fatal(err)
	}
	c.SetReservation("jobB", 6000)

	c.RunOnce()
	if alloc := c.LastAllocation(); alloc["jobA"] != 4000 || alloc["jobB"] != 4000 {
		t.Fatalf("initial allocation = %v", alloc)
	}

	if !c.Deregister("s2") {
		t.Fatal("Deregister(s2) = false")
	}
	alloc := c.LastAllocation()
	if _, leaked := alloc["jobB"]; leaked {
		t.Errorf("departed job still holds its share: %v", alloc)
	}
	// The reservation must not outlive the job either: if jobB's ID is
	// recycled later, the new job starts clean.
	_, c2b := localStage("s2", "jobB", clk)
	if err := c.Register(c2b); err != nil {
		t.Fatal(err)
	}
	for _, snap := range c.CollectAll() {
		if snap.JobID == "jobB" && snap.Reservation != 0 {
			t.Errorf("reservation leaked across job lifetimes: %+v", snap)
		}
	}
}

// TestEvictionReleasesDeadStageShare is the eviction regression: RunOnce
// splits a job's grant across all registered stages, so without
// mark-sweep eviction a crashed stage dilutes its job's share forever —
// the live stage is pinned at alloc/2.
func TestEvictionReleasesDeadStageShare(t *testing.T) {
	clk := clock.NewSim(epoch)
	c := New(clk, WithClusterLimit(8000), WithAlgorithm(StaticEqualShare{}), WithEvictAfter(2))
	live, liveConn := localStage("s1", "jobA", clk)
	deadStg, _ := localStage("s2", "jobA", clk)
	dead := &failingConn{LocalConn{Stg: deadStg}}
	if err := c.Register(liveConn); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(dead); err != nil {
		t.Fatal(err)
	}

	c.RunOnce()
	if got := ruleRate(live, ControlRuleID); got != 4000 {
		t.Fatalf("with the dead stage registered, live stage rate = %v, want 4000", got)
	}
	// Round 2 reaches the miss threshold and sweeps; the same round's
	// push already divides by the surviving stage count.
	c.RunOnce()
	if got := len(c.Stages()); got != 1 {
		t.Fatalf("dead stage not evicted: %d stages registered", got)
	}
	if got := ruleRate(live, ControlRuleID); got != 8000 {
		t.Errorf("after eviction, live stage rate = %v, want the full 8000", got)
	}
}

func TestEvictionDisabledByDefault(t *testing.T) {
	clk := clock.NewSim(epoch)
	c := New(clk, WithClusterLimit(8000), WithAlgorithm(StaticEqualShare{}))
	deadStg, _ := localStage("s1", "jobA", clk)
	if err := c.Register(&failingConn{LocalConn{Stg: deadStg}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c.RunOnce()
	}
	if got := len(c.Stages()); got != 1 {
		t.Errorf("stage evicted with eviction disabled: %d stages", got)
	}
}

func TestEvictionReportsAndRecoversOnSuccess(t *testing.T) {
	clk := clock.NewSim(epoch)
	var mu sync.Mutex
	var evicted []string
	c := New(clk, WithClusterLimit(8000), WithAlgorithm(StaticEqualShare{}), WithEvictAfter(3),
		WithErrorHandler(func(id string, err error) {
			if errors.Is(err, ErrEvicted) {
				mu.Lock()
				evicted = append(evicted, id)
				mu.Unlock()
			}
		}))
	stg, _ := localStage("s1", "jobA", clk)
	flaky := &flakyConn{LocalConn: LocalConn{Stg: stg}}
	if err := c.Register(flaky); err != nil {
		t.Fatal(err)
	}

	// Two misses, then a success: the mark must clear.
	flaky.fail = true
	c.RunOnce()
	c.RunOnce()
	flaky.fail = false
	c.RunOnce()
	flaky.fail = true
	c.RunOnce()
	c.RunOnce()
	mu.Lock()
	n := len(evicted)
	mu.Unlock()
	if n != 0 {
		t.Fatalf("stage evicted after interleaved successes: %v", evicted)
	}
	c.RunOnce() // third consecutive miss -> sweep
	mu.Lock()
	defer mu.Unlock()
	if len(evicted) != 1 || evicted[0] != "s1" {
		t.Errorf("evicted = %v, want [s1]", evicted)
	}
}

// flakyConn fails Collect on demand.
type flakyConn struct {
	LocalConn
	mu   sync.Mutex
	fail bool
}

func (f *flakyConn) Collect() (stage.Stats, error) {
	f.mu.Lock()
	fail := f.fail
	f.mu.Unlock()
	if fail {
		return stage.Stats{}, errors.New("injected collect failure")
	}
	return f.LocalConn.Collect()
}

func TestCollectAllBoundedConcurrencyIsDeterministic(t *testing.T) {
	clk := clock.NewSim(epoch)
	c := New(clk, WithCollectConcurrency(4))
	stages := make([]*stage.Stage, 0, 12)
	for i := 0; i < 12; i++ {
		id := string(rune('a' + i))
		stg, conn := localStage("s-"+id, "job-"+string(rune('A'+i%3)), clk)
		stages = append(stages, stg)
		if err := c.Register(conn); err != nil {
			t.Fatal(err)
		}
	}
	// One stage degraded, one failing: the snapshot must carry both
	// facts, identically on every run.
	stages[5].SetDegraded(true)
	var first []JobSnapshot
	for run := 0; run < 5; run++ {
		snaps := c.CollectAll()
		if run == 0 {
			first = snaps
			continue
		}
		if !reflect.DeepEqual(first, snaps) {
			t.Fatalf("run %d diverged:\n%+v\nvs\n%+v", run, snaps, first)
		}
	}
	if len(first) != 3 {
		t.Fatalf("snapshots = %+v", first)
	}
	for _, s := range first {
		wantDegraded := s.JobID == "job-C" // stage index 5 -> job 5%3=2 -> C
		if s.Degraded != wantDegraded || (wantDegraded && s.DegradedStages != 1) {
			t.Errorf("degraded aggregation wrong: %+v", s)
		}
	}
}

func TestCollectAllCountsFailedStages(t *testing.T) {
	clk := clock.NewSim(epoch)
	c := New(clk)
	_, ok1 := localStage("s1", "jobA", clk)
	deadStg, _ := localStage("s2", "jobA", clk)
	if err := c.Register(ok1); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(&failingConn{LocalConn{Stg: deadStg}}); err != nil {
		t.Fatal(err)
	}
	snaps := c.CollectAll()
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %+v", snaps)
	}
	if snaps[0].Stages != 1 || snaps[0].FailedStages != 1 {
		t.Errorf("partial snapshot = %+v, want Stages=1 FailedStages=1", snaps[0])
	}
}

func TestReRegistrationReplaysLastKnownRules(t *testing.T) {
	clk := clock.NewSim(epoch)
	c := New(clk, WithClusterLimit(6000), WithAlgorithm(StaticEqualShare{}))
	_, conn := localStage("s1", "jobA", clk)
	if err := c.Register(conn); err != nil {
		t.Fatal(err)
	}
	admin := policy.Rule{ID: "open-cap", Match: policy.Matcher{JobID: "jobA"}, Rate: 1000}
	if err := c.ApplyRuleToJob("jobA", admin); err != nil {
		t.Fatal(err)
	}
	cluster := policy.Rule{ID: "cluster-floor", Rate: 9000}
	if err := c.ApplyRuleCluster(cluster); err != nil {
		t.Fatal(err)
	}
	c.RunOnce() // records lastAlloc: jobA -> 6000

	// The stage restarts: a fresh Stage object with an empty rule set
	// re-registers under the same ID.
	fresh, freshConn := localStage("s1", "jobA", clk)
	if err := c.Register(freshConn); err != nil {
		t.Fatal(err)
	}
	if got := ruleRate(fresh, ControlRuleID); got != 6000 {
		t.Errorf("managed rule replayed at %v, want the frozen 6000 (not an equal-share reset)", got)
	}
	if got := ruleRate(fresh, "open-cap"); got != 1000 {
		t.Errorf("admin rule replayed at %v, want 1000", got)
	}
	if got := ruleRate(fresh, "cluster-floor"); got != 9000 {
		t.Errorf("cluster rule replayed at %v, want 9000", got)
	}
}

func TestRunOnceSurvivesPartialPushFailures(t *testing.T) {
	// A stage that accepts Collect but fails SetRate must not abort the
	// round for the others. It also must NOT be evicted: it still
	// answers Collect, so it is alive — each successful collect clears
	// the miss its failed push recorded.
	clk := clock.NewSim(epoch)
	var mu sync.Mutex
	var pushErrs int
	c := New(clk, WithClusterLimit(8000), WithAlgorithm(StaticEqualShare{}), WithEvictAfter(2),
		WithErrorHandler(func(id string, err error) {
			mu.Lock()
			if id == "s2" && !errors.Is(err, ErrEvicted) {
				pushErrs++
			}
			mu.Unlock()
		}))
	live, liveConn := localStage("s1", "jobA", clk)
	pushDeadStg, _ := localStage("s2", "jobB", clk)
	pushDead := &setRateFailingConn{LocalConn{Stg: pushDeadStg}}
	if err := c.Register(liveConn); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(pushDead); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c.RunOnce()
	}
	if got := ruleRate(live, ControlRuleID); got != 4000 {
		t.Fatalf("live stage rate = %v, want 4000", got)
	}
	if got := len(c.Stages()); got != 2 {
		t.Errorf("collect-alive stage was evicted: %d registered", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if pushErrs == 0 {
		t.Error("push failures were swallowed: onError never saw them")
	}
}

// setRateFailingConn collects fine but refuses rate pushes.
type setRateFailingConn struct{ LocalConn }

func (f *setRateFailingConn) SetRate(string, float64) (bool, error) {
	return false, errors.New("injected push failure")
}
