package control

// LimitAdapter adjusts the cluster-wide limit between feedback-loop
// iterations, closing the loop on backend health. §I sketches exactly
// this class of policy: "dynamically adjusting the metadata rate of all
// jobs according to workload and system variations". The adapter sees
// the current limit and returns the next one; the controller then
// allocates the (possibly changed) limit among jobs as usual.
type LimitAdapter interface {
	// AdjustLimit returns the next cluster limit given the current one.
	AdjustLimit(current float64) float64
}

// AIMDLimit discovers and tracks the sustainable metadata rate with
// additive-increase / multiplicative-decrease — the classic congestion
// controller, driven here by a backend-health probe (e.g. "is the MDS
// saturated"). While the probe reports healthy, the limit creeps up by
// Increase each round, reclaiming capacity; on a saturation signal it is
// cut by the Decrease factor, backing the whole cluster off before the
// MDS accumulates a harmful backlog.
type AIMDLimit struct {
	// Probe reports whether the protected backend is currently beyond
	// its sustainable operating point. Required.
	Probe func() bool
	// Min and Max clamp the limit.
	Min, Max float64
	// Increase is the additive step per healthy round (default Max/100,
	// or 1 when Max is unset).
	Increase float64
	// Decrease is the multiplicative back-off factor on a saturation
	// signal (default 0.7).
	Decrease float64
}

var _ LimitAdapter = (*AIMDLimit)(nil)

// AdjustLimit implements LimitAdapter.
func (a *AIMDLimit) AdjustLimit(current float64) float64 {
	inc := a.Increase
	if inc <= 0 {
		if a.Max > 0 {
			inc = a.Max / 100
		} else {
			inc = 1
		}
	}
	dec := a.Decrease
	if dec <= 0 || dec >= 1 {
		dec = 0.7
	}
	next := current
	if a.Probe != nil && a.Probe() {
		next = current * dec
	} else {
		next = current + inc
	}
	if a.Min > 0 && next < a.Min {
		next = a.Min
	}
	if a.Max > 0 && next > a.Max {
		next = a.Max
	}
	return next
}
