package control

import (
	"errors"
	"testing"
	"time"

	"padll/internal/clock"
	"padll/internal/posix"
	"padll/internal/rpcio"
	"padll/internal/stage"
)

// aggFixture builds an aggregator over four local stages: s1/s2 serve
// job1, s3/s4 serve job2.
func aggFixture(clk clock.Clock, opts ...AggOption) (*Aggregator, map[string]*stage.Stage) {
	agg := NewAggregator("agg-test", opts...)
	stages := make(map[string]*stage.Stage)
	for id, job := range map[string]string{"s1": "job1", "s2": "job1", "s3": "job2", "s4": "job2"} {
		stg, conn := localStage(id, job, clk)
		stages[id] = stg
		agg.AddMember(conn)
	}
	return agg, stages
}

// offerTo feeds demand through a stage's managed queue over one
// simulated second.
func offerTo(clk *clock.Sim, stages map[string]*stage.Stage, perStage map[string]float64) {
	for id, n := range perStage {
		s := stages[id]
		s.Offer(&posix.Request{Op: posix.OpOpen, Path: "/f", JobID: s.Info().JobID}, n, time.Second)
	}
	clk.Advance(time.Second)
	for id := range perStage {
		s := stages[id]
		s.Offer(&posix.Request{Op: posix.OpOpen, Path: "/f", JobID: s.Info().JobID}, 0, time.Second)
	}
}

func TestAggregatorRoundPushesAndMerges(t *testing.T) {
	clk := clock.NewSim(epoch)
	agg, stages := aggFixture(clk)
	if agg.Members() != 4 {
		t.Fatalf("Members = %d, want 4", agg.Members())
	}

	// Push: each job's shard grant splits equally among its members, and
	// the managed rule is installed where it did not exist.
	grants := []rpcio.JobGrant{{JobID: "job1", Rate: 1000}, {JobID: "job2", Rate: 2000}}
	var reply rpcio.AggRoundReply
	if err := agg.Round(&rpcio.AggRoundArgs{Grants: grants}, &reply); err != nil {
		t.Fatal(err)
	}
	wantRate := map[string]float64{"s1": 500, "s2": 500, "s3": 1000, "s4": 1000}
	for id, want := range wantRate {
		rules := stages[id].Rules()
		if len(rules) != 1 || rules[0].ID != ControlRuleID || rules[0].Rate != want {
			t.Errorf("%s rules = %+v, want managed rule at %v", id, rules, want)
		}
		if job := stages[id].Info().JobID; rules[0].Match.JobID != job {
			t.Errorf("%s managed rule scoped to %q, want %q", id, rules[0].Match.JobID, job)
		}
	}

	// Collect: per-member statistics merge into one row per job.
	offerTo(clk, stages, map[string]float64{"s1": 100, "s2": 200, "s3": 40, "s4": 60})
	reply = rpcio.AggRoundReply{}
	if err := agg.Round(&rpcio.AggRoundArgs{Collect: true}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.AggID != "agg-test" || reply.Stages != 4 {
		t.Errorf("reply identity = %q/%d, want agg-test/4", reply.AggID, reply.Stages)
	}
	if len(reply.Jobs) != 2 || reply.Jobs[0].JobID != "job1" || reply.Jobs[1].JobID != "job2" {
		t.Fatalf("reply.Jobs = %+v, want sorted [job1 job2]", reply.Jobs)
	}
	if j1 := reply.Jobs[0]; j1.Stages != 2 || j1.Demand != 300 {
		t.Errorf("job1 row = %+v, want 2 stages / demand 300", j1)
	}
	if j2 := reply.Jobs[1]; j2.Stages != 2 || j2.Demand != 100 {
		t.Errorf("job2 row = %+v, want 2 stages / demand 100", j2)
	}
}

func TestAggregatorReinstallsLostManagedRule(t *testing.T) {
	clk := clock.NewSim(epoch)
	agg, stages := aggFixture(clk)
	grants := []rpcio.JobGrant{{JobID: "job1", Rate: 1000}, {JobID: "job2", Rate: 2000}}
	var reply rpcio.AggRoundReply
	if err := agg.Round(&rpcio.AggRoundArgs{Grants: grants}, &reply); err != nil {
		t.Fatal(err)
	}
	// s2 restarts: its managed queue vanishes. The next push round must
	// bring it back at the fresh rate.
	stages["s2"].RemoveRule(ControlRuleID)
	if err := agg.Round(&rpcio.AggRoundArgs{Grants: grants}, &reply); err != nil {
		t.Fatal(err)
	}
	rules := stages["s2"].Rules()
	if len(rules) != 1 || rules[0].ID != ControlRuleID || rules[0].Rate != 500 {
		t.Fatalf("s2 rules after reinstall = %+v, want managed rule at 500", rules)
	}
}

// deadConn fails every exchange, simulating an unreachable member.
type deadConn struct{ LocalConn }

func (d *deadConn) SetRate(string, float64) (bool, error) {
	return false, errors.New("member unreachable")
}
func (d *deadConn) Collect() (stage.Stats, error) {
	return stage.Stats{}, errors.New("member unreachable")
}

func TestAggregatorReportsFailedStages(t *testing.T) {
	clk := clock.NewSim(epoch)
	agg := NewAggregator("agg-partial")
	stg, conn := localStage("s1", "job1", clk)
	agg.AddMember(conn)
	dead, _ := localStage("s2", "job1", clk)
	agg.AddMember(&deadConn{LocalConn{Stg: dead}})
	_ = stg

	var reply rpcio.AggRoundReply
	err := agg.Round(&rpcio.AggRoundArgs{
		Grants:  []rpcio.JobGrant{{JobID: "job1", Rate: 1000}},
		Collect: true,
	}, &reply)
	if err != nil {
		t.Fatalf("member failure must not fail the round: %v", err)
	}
	if len(reply.Jobs) != 1 {
		t.Fatalf("reply.Jobs = %+v", reply.Jobs)
	}
	row := reply.Jobs[0]
	if row.Stages != 1 || row.FailedStages != 1 {
		t.Errorf("row = %+v, want 1 live / 1 failed", row)
	}
}

func TestAggregatorBorrowingSettlesOnPush(t *testing.T) {
	clk := clock.NewSim(epoch)
	agg := NewAggregator("agg-borrow", WithAggBorrowing(1.0))
	busy, busyConn := localStage("s1", "job1", clk)
	idle, idleConn := localStage("s2", "job1", clk)
	agg.AddMember(busyConn)
	agg.AddMember(idleConn)
	_ = idle

	grants := []rpcio.JobGrant{{JobID: "job1", Rate: 200}}
	var reply rpcio.AggRoundReply
	if err := agg.Round(&rpcio.AggRoundArgs{Grants: grants}, &reply); err != nil {
		t.Fatal(err)
	}

	// Saturate the busy member far past its per-stage share while its
	// sibling idles: the shortage path must borrow the sibling's unused
	// tokens rather than shaping.
	req := &posix.Request{Op: posix.OpOpen, Path: "/f", JobID: "job1"}
	busy.Offer(req, 500, time.Second)
	clk.Advance(time.Second)
	busy.Offer(req, 0, time.Second)

	borrowed, _, _ := agg.BorrowCounts()
	if borrowed <= 0 {
		t.Fatal("busy member did not borrow from its idle sibling")
	}
	// Work conservation with a hard ceiling: the two members together
	// must never admit more than the shard was granted (plus both
	// bursts), tokens moved but not minted.
	var st stage.Stats
	busy.CollectInto(&st)
	var admitted float64
	for _, q := range st.Queues {
		if q.RuleID == ControlRuleID {
			admitted = float64(q.Total)
		}
	}
	burst := busy.Rules()[0].EffectiveBurst() + idle.Rules()[0].EffectiveBurst()
	if ceiling := 200 + burst + borrowed; admitted > ceiling {
		t.Errorf("busy member admitted %v, above conservation ceiling %v", admitted, ceiling)
	}

	// The next plan push settles the ledger: debts repay or are
	// forgiven, never carried into the fresh allocation.
	if err := agg.Round(&rpcio.AggRoundArgs{Grants: grants}, &reply); err != nil {
		t.Fatal(err)
	}
	b, r, f := agg.BorrowCounts()
	if b != r+f {
		t.Errorf("after settle: borrowed %v != repaid %v + forgiven %v", b, r, f)
	}
	if reply.Borrowed != b || reply.Repaid != r || reply.Forgiven != f {
		t.Errorf("reply counters %v/%v/%v diverge from pool %v/%v/%v",
			reply.Borrowed, reply.Repaid, reply.Forgiven, b, r, f)
	}
}

func TestControllerTreeModeMatchesFlat(t *testing.T) {
	// The same fleet, demand, and algorithm must allocate identically
	// through the tree and flat paths: the aggregator tier changes the
	// wire shape, not the control decision.
	runFleet := func(opts ...Option) (map[string]float64, map[string]*stage.Stage, *Controller) {
		clk := clock.NewSim(epoch)
		base := []Option{WithAlgorithm(ProportionalShare{}), WithClusterLimit(1000)}
		c := New(clk, append(base, opts...)...)
		c.SetReservation("job1", 400)
		c.SetReservation("job2", 600)
		stages := make(map[string]*stage.Stage)
		for id, job := range map[string]string{"s1": "job1", "s2": "job1", "s3": "job2", "s4": "job2"} {
			stg, conn := localStage(id, job, clk)
			stages[id] = stg
			if err := c.Register(conn); err != nil {
				t.Fatal(err)
			}
		}
		offerTo(clk, stages, map[string]float64{"s1": 900, "s2": 900, "s3": 30, "s4": 30})
		return c.RunOnce(), stages, c
	}

	flatAlloc, _, _ := runFleet()
	treeAlloc, treeStages, c := runFleet(WithTopology(2))
	if treeAlloc == nil {
		t.Fatal("tree RunOnce returned nil")
	}
	for job, want := range flatAlloc {
		if got := treeAlloc[job]; got != want {
			t.Errorf("tree alloc[%s] = %v, flat = %v", job, got, want)
		}
	}
	// The grant reaches the stages: per-stage rate is the job allocation
	// split across its (two) stages.
	for id, stg := range treeStages {
		job := stg.Info().JobID
		want := treeAlloc[job] / 2
		if got := stg.Rules()[0].Rate; got != want {
			t.Errorf("%s enforced rate = %v, want %v", id, got, want)
		}
	}
	if aggs := c.Aggregators(); len(aggs) != 2 || aggs[0] != "agg-0000" || aggs[1] != "agg-0001" {
		t.Errorf("Aggregators = %v, want [agg-0000 agg-0001]", aggs)
	}
	rs, ok := c.LastRound()
	if !ok || rs.Aggregators != 2 || rs.Stages != 4 {
		t.Errorf("RoundStats = %+v, want 2 aggregators over 4 stages", rs)
	}
	if rs.CollectCalls != 2 || rs.PushCalls != 2 {
		t.Errorf("round cost = %d collects / %d pushes, want 2/2 (one per shard)", rs.CollectCalls, rs.PushCalls)
	}
}

func TestTreeTopologyRebuildsOnRegistryChange(t *testing.T) {
	clk := clock.NewSim(epoch)
	c := New(clk, WithAlgorithm(StaticEqualShare{}), WithClusterLimit(1000), WithTopology(2))
	stages := make(map[string]*stage.Stage)
	add := func(id, job string) {
		stg, conn := localStage(id, job, clk)
		stages[id] = stg
		if err := c.Register(conn); err != nil {
			t.Fatal(err)
		}
	}
	add("s1", "job1")
	add("s2", "job1")
	add("s3", "job1")
	offerTo(clk, stages, map[string]float64{"s1": 10, "s2": 10, "s3": 10})
	if c.RunOnce() == nil {
		t.Fatal("RunOnce returned nil")
	}
	if aggs := c.Aggregators(); len(aggs) != 2 {
		t.Fatalf("Aggregators = %v, want 2 shards for 3 stages at shard size 2", aggs)
	}

	// Growing the fleet reshards lazily at the next round.
	add("s4", "job1")
	add("s5", "job1")
	offerTo(clk, stages, map[string]float64{"s4": 10, "s5": 10})
	if c.RunOnce() == nil {
		t.Fatal("RunOnce returned nil after growth")
	}
	if aggs := c.Aggregators(); len(aggs) != 3 {
		t.Errorf("Aggregators = %v, want 3 shards for 5 stages", aggs)
	}
	rs, _ := c.LastRound()
	if rs.Stages != 5 {
		t.Errorf("RoundStats.Stages = %d, want 5", rs.Stages)
	}
}

func TestTreeModeOverWire(t *testing.T) {
	// One aggregator served through the encoded loopback: the controller
	// drives it via the Agg.Round wire protocol, and the round's byte
	// accounting shows traffic.
	clk := clock.NewSim(epoch)
	c := New(clk, WithAlgorithm(StaticEqualShare{}), WithClusterLimit(1000))
	agg, stages := aggFixture(clk)
	conn, err := NewRemoteAggConn(rpcio.EncodedLoopbackAgg(rpcio.NewAggService(agg)))
	if err != nil {
		t.Fatal(err)
	}
	if conn.ID() != "agg-test" {
		t.Fatalf("attach learned ID %q", conn.ID())
	}
	c.RegisterAggregator(conn)

	offerTo(clk, stages, map[string]float64{"s1": 100, "s2": 100, "s3": 100, "s4": 100})
	alloc := c.RunOnce()
	if alloc == nil {
		t.Fatal("RunOnce returned nil")
	}
	if alloc["job1"] != 500 || alloc["job2"] != 500 {
		t.Errorf("alloc = %v, want equal 500/500 split", alloc)
	}
	for id, stg := range stages {
		if got := stg.Rules()[0].Rate; got != 250 {
			t.Errorf("%s rate = %v, want 250", id, got)
		}
	}
	rs, ok := c.LastRound()
	if !ok || rs.Aggregators != 1 || rs.Stages != 4 {
		t.Errorf("RoundStats = %+v", rs)
	}
	if rs.BytesRead == 0 || rs.BytesWritten == 0 {
		t.Errorf("wire accounting empty: %+v", rs)
	}
	if !c.DeregisterAggregator("agg-test") {
		t.Error("DeregisterAggregator returned false")
	}
	if c.DeregisterAggregator("agg-test") {
		t.Error("double DeregisterAggregator returned true")
	}
}

func TestTreeModeSkipsDeadShard(t *testing.T) {
	clk := clock.NewSim(epoch)
	var reported []string
	c := New(clk,
		WithAlgorithm(StaticEqualShare{}),
		WithClusterLimit(1000),
		WithErrorHandler(func(id string, err error) { reported = append(reported, id) }),
	)
	agg, stages := aggFixture(clk)
	c.RegisterAggregator(&LocalAggConn{Agg: agg})
	c.RegisterAggregator(&failingAggConn{id: "agg-dead"})

	offerTo(clk, stages, map[string]float64{"s1": 100, "s3": 100})
	alloc := c.RunOnce()
	if alloc == nil {
		t.Fatal("RunOnce returned nil")
	}
	rs, _ := c.LastRound()
	if rs.CollectFailures != 1 {
		t.Errorf("CollectFailures = %d, want 1", rs.CollectFailures)
	}
	found := false
	for _, id := range reported {
		if id == "agg-dead" {
			found = true
		}
	}
	if !found {
		t.Errorf("dead shard not reported: %v", reported)
	}
}

type failingAggConn struct{ id string }

func (f *failingAggConn) ID() string { return f.id }
func (f *failingAggConn) Round([]rpcio.JobGrant, bool, *rpcio.AggRoundReply) error {
	return errors.New("aggregator unreachable")
}
func (f *failingAggConn) Close() error { return nil }
