package ior

import (
	"context"
	"testing"
	"time"

	"padll/internal/clock"
	"padll/internal/localfs"
	"padll/internal/pfs"
	"padll/internal/posix"
)

var epoch = time.Date(2022, 5, 1, 0, 0, 0, 0, time.UTC)

func TestWriteThenReadRoundTrip(t *testing.T) {
	fs := localfs.New(clock.NewSim(epoch))
	res, err := Run(context.Background(), Config{
		Client:       posix.NewClient(fs),
		Dir:          "/bench",
		NumTasks:     4,
		TransferSize: 4 << 10,
		BlockSize:    64 << 10,
		SegmentCount: 2,
		Mode:         WriteThenRead,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(4 * 2 * 64 << 10) // tasks * segments * block
	if res.BytesWritten != want {
		t.Errorf("written = %d, want %d", res.BytesWritten, want)
	}
	if res.BytesRead != want {
		t.Errorf("read = %d, want %d", res.BytesRead, want)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d", res.Errors)
	}
	wantOps := int64(4 * 2 * (64 / 4)) // tasks * segments * transfers/block
	if res.WriteOps != wantOps || res.ReadOps != wantOps {
		t.Errorf("ops = %d/%d, want %d", res.WriteOps, res.ReadOps, wantOps)
	}
}

func TestSharedFileLayoutDisjoint(t *testing.T) {
	// With a shared file, each task writes its own block region; total
	// file size must be tasks*segments*block with no overlap lost.
	fs := localfs.New(clock.NewSim(epoch))
	c := posix.NewClient(fs)
	_, err := Run(context.Background(), Config{
		Client:       c,
		Dir:          "/shared",
		NumTasks:     3,
		TransferSize: 1 << 10,
		BlockSize:    8 << 10,
		SegmentCount: 2,
		Mode:         WriteOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Stat("/shared/ior.shared")
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(3 * 2 * 8 << 10); info.Size != want {
		t.Errorf("shared file size = %d, want %d", info.Size, want)
	}
}

func TestFilePerProcessCreatesOneFileEach(t *testing.T) {
	fs := localfs.New(clock.NewSim(epoch))
	c := posix.NewClient(fs)
	_, err := Run(context.Background(), Config{
		Client:         c,
		Dir:            "/fpp",
		NumTasks:       4,
		TransferSize:   1 << 10,
		BlockSize:      4 << 10,
		Mode:           WriteOnly,
		FilePerProcess: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := c.Readdir("/fpp")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Errorf("got %d files, want 4", len(entries))
	}
}

func TestRandomOrderStillCoversRegion(t *testing.T) {
	fs := localfs.New(clock.NewSim(epoch))
	c := posix.NewClient(fs)
	res, err := Run(context.Background(), Config{
		Client:       c,
		Dir:          "/rnd",
		NumTasks:     1,
		TransferSize: 1 << 10,
		BlockSize:    16 << 10,
		Mode:         WriteOnly,
		Random:       true,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesWritten != 16<<10 {
		t.Errorf("random write covered %d bytes, want %d", res.BytesWritten, 16<<10)
	}
	info, _ := c.Stat("/rnd/ior.shared")
	if info.Size != 16<<10 {
		t.Errorf("file size = %d", info.Size)
	}
}

func TestAgainstPFSConsumesOSTBandwidth(t *testing.T) {
	p := pfs.New(clock.NewReal(), pfs.Config{
		MDSCapacity:  1e9,
		MDSBurst:     1e9,
		OSTBandwidth: 1e12,
		OSTBurst:     1e12,
	})
	res, err := Run(context.Background(), Config{
		Client:       posix.NewClient(p),
		Dir:          "/lustre-bench",
		NumTasks:     2,
		TransferSize: 64 << 10,
		BlockSize:    1 << 20,
		Mode:         WriteThenRead,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.BytesWritten != res.BytesWritten {
		t.Errorf("PFS saw %d bytes written, generator reports %d", st.BytesWritten, res.BytesWritten)
	}
	if st.BytesRead != res.BytesRead {
		t.Errorf("PFS saw %d bytes read, generator reports %d", st.BytesRead, res.BytesRead)
	}
	if res.WriteBandwidth() <= 0 || res.ReadBandwidth() <= 0 {
		t.Error("bandwidth not computed")
	}
}

func TestCancelStopsRun(t *testing.T) {
	fs := localfs.New(clock.NewSim(epoch))
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before starting: only opens happen
	res, err := Run(ctx, Config{
		Client:       posix.NewClient(fs),
		Dir:          "/c",
		NumTasks:     2,
		TransferSize: 1 << 10,
		BlockSize:    1 << 20,
		SegmentCount: 100,
		Mode:         WriteOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesWritten != 0 {
		t.Errorf("cancelled run wrote %d bytes", res.BytesWritten)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("Run without client succeeded")
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg, err := Config{Client: posix.NewClient(localfs.New(clock.NewSim(epoch)))}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumTasks != 1 || cfg.TransferSize != 256<<10 || cfg.BlockSize != 8<<20 || cfg.SegmentCount != 1 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestBlockSmallerThanTransferClamped(t *testing.T) {
	cfg, err := Config{
		Client:       posix.NewClient(localfs.New(clock.NewSim(epoch))),
		TransferSize: 1 << 20,
		BlockSize:    1 << 10,
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BlockSize != cfg.TransferSize {
		t.Errorf("block = %d, want clamped to transfer %d", cfg.BlockSize, cfg.TransferSize)
	}
}

func TestRepeatLoopsUntilDeadline(t *testing.T) {
	fs := localfs.New(clock.NewReal())
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	res, err := Run(ctx, Config{
		Client:       posix.NewClient(fs),
		Dir:          "/loop",
		NumTasks:     2,
		TransferSize: 1 << 10,
		BlockSize:    4 << 10,
		SegmentCount: 1,
		Mode:         WriteOnly,
		Repeat:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One pass is 2 tasks x 4 transfers = 8 ops; with Repeat over 150ms
	// on an in-memory FS we should see many passes.
	if res.WriteOps <= 8*3 {
		t.Errorf("repeat produced only %d ops; loop not repeating", res.WriteOps)
	}
}

func TestRepeatReadLoop(t *testing.T) {
	fs := localfs.New(clock.NewReal())
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	res, err := Run(ctx, Config{
		Client:       posix.NewClient(fs),
		Dir:          "/rl",
		NumTasks:     1,
		TransferSize: 1 << 10,
		BlockSize:    4 << 10,
		Mode:         WriteThenRead,
		Repeat:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteOps != 4 {
		t.Errorf("write phase ops = %d, want exactly one pass (4)", res.WriteOps)
	}
	if res.ReadOps <= 12 {
		t.Errorf("read loop ops = %d; not repeating", res.ReadOps)
	}
}
