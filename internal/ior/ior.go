// Package ior implements an IOR-like synthetic data-workload generator
// (the paper's data benchmark, §IV). It reproduces the IOR knobs that
// matter for PADLL's evaluation: parallel tasks (ranks), transfer size,
// block size, segment count, read/write phases, file-per-process vs
// shared-file layouts, and sequential vs random access — submitting plain
// POSIX requests through whatever client it is given, so the same
// workload runs against the raw file system (baseline), a passthrough
// shim, or a throttled PADLL stack.
package ior

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"padll/internal/clock"
	"padll/internal/metrics"
	"padll/internal/posix"
)

// Mode selects the I/O phases to run.
type Mode int

const (
	// WriteOnly runs only the write phase.
	WriteOnly Mode = iota
	// ReadOnly runs only the read phase (files must exist: run a write
	// phase first or point at an existing dataset).
	ReadOnly
	// WriteThenRead runs a write phase then a read-back phase.
	WriteThenRead
)

// Config parameterizes a run.
type Config struct {
	// Client issues the I/O. Required.
	Client *posix.Client
	// Dir is the working directory (created if missing).
	Dir string
	// NumTasks is the number of parallel ranks (default 1).
	NumTasks int
	// TransferSize is the bytes moved per read/write call (default 256 KiB).
	TransferSize int64
	// BlockSize is each task's contiguous region per segment (default 8 MiB).
	BlockSize int64
	// SegmentCount repeats the block pattern (default 1).
	SegmentCount int
	// Mode selects write/read phases.
	Mode Mode
	// FilePerProcess gives each rank its own file instead of a shared one.
	FilePerProcess bool
	// Random shuffles transfer order within each task's region.
	Random bool
	// Seed drives the random shuffle.
	Seed int64
	// Repeat loops the final phase (the read phase for WriteThenRead,
	// otherwise the only phase) until the context is cancelled — used by
	// duration-bounded experiments that sweep rate limits over a steady
	// stream.
	Repeat bool
	// Clock paces metrics (default real clock).
	Clock clock.Clock
	// Window is the throughput sampling window (default 1s).
	Window time.Duration
}

func (c Config) withDefaults() (Config, error) {
	if c.Client == nil {
		return c, fmt.Errorf("ior: Client is required")
	}
	if c.Dir == "" {
		c.Dir = "/ior"
	}
	if c.NumTasks <= 0 {
		c.NumTasks = 1
	}
	if c.TransferSize <= 0 {
		c.TransferSize = 256 << 10
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 8 << 20
	}
	if c.BlockSize < c.TransferSize {
		c.BlockSize = c.TransferSize
	}
	if c.SegmentCount <= 0 {
		c.SegmentCount = 1
	}
	if c.Clock == nil {
		c.Clock = clock.NewReal()
	}
	if c.Window <= 0 {
		c.Window = time.Second
	}
	return c, nil
}

// Result reports a run's outcome.
type Result struct {
	// BytesWritten and BytesRead are the payload volumes moved.
	BytesWritten int64
	BytesRead    int64
	// WriteOps and ReadOps count the transfer calls issued.
	WriteOps int64
	ReadOps  int64
	// Elapsed is the wall (or simulated) duration of the run.
	Elapsed time.Duration
	// WriteOpsSeries / ReadOpsSeries are ops/s over sampling windows.
	WriteOpsSeries *metrics.Series
	ReadOpsSeries  *metrics.Series
	// Errors counts failed transfers.
	Errors int64
}

// WriteBandwidth returns the write phase's mean bandwidth in bytes/s.
func (r Result) WriteBandwidth() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.BytesWritten) / r.Elapsed.Seconds()
}

// ReadBandwidth returns the read phase's mean bandwidth in bytes/s.
func (r Result) ReadBandwidth() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.BytesRead) / r.Elapsed.Seconds()
}

// Run executes the workload and blocks until it completes or ctx is
// cancelled.
func Run(ctx context.Context, cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if err := cfg.Client.Mkdir(cfg.Dir, 0o755); err != nil && err != posix.ErrExist {
		return Result{}, fmt.Errorf("ior: mkdir %s: %w", cfg.Dir, err)
	}

	var res Result
	var errCount atomic.Int64
	writeOps := metrics.NewRateCounter("ior-write-ops", cfg.Clock, cfg.Window)
	readOps := metrics.NewRateCounter("ior-read-ops", cfg.Clock, cfg.Window)
	start := cfg.Clock.Now()

	runPhase := func(write bool) (int64, int64) {
		var bytes, ops atomic.Int64
		var wg sync.WaitGroup
		for task := 0; task < cfg.NumTasks; task++ {
			wg.Add(1)
			go func(task int) {
				defer wg.Done()
				b, o := cfg.runTask(ctx, task, write, writeOps, readOps, &errCount)
				bytes.Add(b)
				ops.Add(o)
			}(task)
		}
		wg.Wait()
		return bytes.Load(), ops.Load()
	}

	if cfg.Mode == WriteOnly || cfg.Mode == WriteThenRead {
		b, o := runPhase(true)
		res.BytesWritten += b
		res.WriteOps += o
		for cfg.Repeat && cfg.Mode == WriteOnly && ctx.Err() == nil {
			b, o = runPhase(true)
			res.BytesWritten += b
			res.WriteOps += o
		}
	}
	if cfg.Mode == ReadOnly || cfg.Mode == WriteThenRead {
		b, o := runPhase(false)
		res.BytesRead += b
		res.ReadOps += o
		for cfg.Repeat && ctx.Err() == nil {
			b, o = runPhase(false)
			res.BytesRead += b
			res.ReadOps += o
		}
	}

	res.Elapsed = cfg.Clock.Now().Sub(start)
	res.WriteOpsSeries = writeOps.Flush()
	res.ReadOpsSeries = readOps.Flush()
	res.Errors = errCount.Load()
	return res, nil
}

// filePath names a rank's target file.
func (cfg Config) filePath(task int) string {
	if cfg.FilePerProcess {
		return fmt.Sprintf("%s/ior.%04d", cfg.Dir, task)
	}
	return cfg.Dir + "/ior.shared"
}

// runTask executes one rank's transfers for one phase.
func (cfg Config) runTask(ctx context.Context, task int, write bool,
	writeOps, readOps *metrics.RateCounter, errCount *atomic.Int64) (int64, int64) {

	flags := posix.ORdWr | posix.OCreate
	fd, err := cfg.Client.Open(cfg.filePath(task), flags, 0o644)
	if err != nil {
		errCount.Add(1)
		return 0, 0
	}
	defer cfg.Client.Close(fd)

	transfersPerBlock := int(cfg.BlockSize / cfg.TransferSize)
	order := make([]int, transfersPerBlock)
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(task)))

	var bytesMoved, ops int64
	buf := make([]byte, cfg.TransferSize)
	for seg := 0; seg < cfg.SegmentCount; seg++ {
		// IOR segmented layout: segment stride covers all tasks' blocks;
		// with file-per-process each task owns the whole block stride.
		var base int64
		if cfg.FilePerProcess {
			base = int64(seg) * cfg.BlockSize
		} else {
			base = (int64(seg)*int64(cfg.NumTasks) + int64(task)) * cfg.BlockSize
		}
		if cfg.Random {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		for _, i := range order {
			if ctx.Err() != nil {
				return bytesMoved, ops
			}
			offset := base + int64(i)*cfg.TransferSize
			if write {
				n, err := cfg.Client.PWrite(fd, buf, offset)
				if err != nil {
					errCount.Add(1)
					continue
				}
				bytesMoved += n
				ops++
				writeOps.Add(1)
			} else {
				data, err := cfg.Client.PRead(fd, cfg.TransferSize, offset)
				if err != nil {
					errCount.Add(1)
					continue
				}
				bytesMoved += int64(len(data))
				ops++
				readOps.Add(1)
			}
		}
	}
	return bytesMoved, ops
}
