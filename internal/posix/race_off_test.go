//go:build !race

package posix

const raceEnabled = false
