//go:build race

package posix

// raceEnabled gates the AllocsPerRun guards: race instrumentation
// defeats escape analysis and randomizes sync.Pool, so allocation
// counts are not meaningful under -race. `make ci` runs the guard
// packages in plain mode as well, so the guards still gate.
const raceEnabled = true
