package posix

import (
	"errors"
	"io/fs"
	"testing"
	"time"
)

func TestFSModeRoundTrip(t *testing.T) {
	cases := []FileMode{0o644, 0o755, ModeDir | 0o755, ModeDir | 0o700, 0}
	for _, m := range cases {
		fm := m.FSMode()
		if fm.IsDir() != m.IsDir() {
			t.Errorf("mode %o: IsDir mismatch over io/fs", uint32(m))
		}
		if fs.FileMode(m.Perm()) != fm.Perm() {
			t.Errorf("mode %o: perm bits %o != %o", uint32(m), m.Perm(), fm.Perm())
		}
		if back := ModeFromFS(fm); back != m {
			t.Errorf("mode %o: round trip gave %o", uint32(m), uint32(back))
		}
	}
	// Non-directory type bits are dropped on the way in.
	if got := ModeFromFS(fs.ModeSymlink | 0o777); got != 0o777 {
		t.Errorf("symlink mode: got %o, want bare perms", uint32(got))
	}
}

func TestFSInfoAdapters(t *testing.T) {
	now := time.Unix(1700000000, 0)
	fi := FileInfo{Name: "data.bin", Size: 4096, Mode: 0o640, ModTime: now, Inode: 42, Nlink: 2, UID: 7, GID: 8}
	info := fi.FSInfo()
	if info.Name() != "data.bin" || info.Size() != 4096 || info.IsDir() || !info.ModTime().Equal(now) {
		t.Errorf("FSInfo mismatch: %v %v %v %v", info.Name(), info.Size(), info.IsDir(), info.ModTime())
	}
	if info.Mode().Perm() != 0o640 {
		t.Errorf("FSInfo mode = %v", info.Mode())
	}
	sys, ok := info.Sys().(FileInfo)
	if !ok || sys.Inode != 42 {
		t.Errorf("Sys() should expose the boundary FileInfo, got %#v", info.Sys())
	}
	// Round trip recovers the original payload, including inode/links.
	if back := FileInfoFromFS(info); back != fi {
		t.Errorf("FileInfoFromFS round trip: got %+v want %+v", back, fi)
	}

	dir := FileInfo{Name: "d", Mode: ModeDir | 0o755, ModTime: now}
	if !dir.FSInfo().IsDir() || dir.FSInfo().Mode()&fs.ModeDir == 0 {
		t.Error("directory flag lost over FSInfo")
	}
}

func TestFSDirEntry(t *testing.T) {
	stats := 0
	e := FSDirEntry(DirEntry{Name: "f.txt", IsDir: false, Inode: 9}, func() (FileInfo, error) {
		stats++
		return FileInfo{Name: "f.txt", Size: 10, Mode: 0o644}, nil
	})
	if e.Name() != "f.txt" || e.IsDir() || e.Type() != 0 {
		t.Errorf("entry adapter mismatch: %v %v %v", e.Name(), e.IsDir(), e.Type())
	}
	if stats != 0 {
		t.Error("stat callback must be lazy")
	}
	info, err := e.Info()
	if err != nil || info.Size() != 10 || stats != 1 {
		t.Errorf("Info: %v size=%d stats=%d", err, info.Size(), stats)
	}

	d := FSDirEntry(DirEntry{Name: "sub", IsDir: true}, func() (FileInfo, error) {
		return FileInfo{}, ErrNotExist
	})
	if d.Type() != fs.ModeDir {
		t.Error("directory entry Type() must carry ModeDir")
	}
	if _, err := d.Info(); !errors.Is(err, ErrNotExist) {
		t.Errorf("Info error passthrough: %v", err)
	}

	if got := DirEntryFromFS(e); got.Name != "f.txt" || got.IsDir {
		t.Errorf("DirEntryFromFS: %+v", got)
	}
}

func TestErrorBridging(t *testing.T) {
	cases := []struct{ posix, std error }{
		{ErrNotExist, fs.ErrNotExist},
		{ErrExist, fs.ErrExist},
		{ErrInvalid, fs.ErrInvalid},
		{ErrBadFD, fs.ErrClosed},
		{ErrNotSupported, errors.ErrUnsupported},
	}
	for _, c := range cases {
		up := ToFSError(c.posix)
		if !errors.Is(up, c.posix) || !errors.Is(up, c.std) {
			t.Errorf("ToFSError(%v): lost an identity (posix=%v std=%v)",
				c.posix, errors.Is(up, c.posix), errors.Is(up, c.std))
		}
		down := FromFSError(c.std)
		if !errors.Is(down, c.posix) || !errors.Is(down, c.std) {
			t.Errorf("FromFSError(%v): lost an identity", c.std)
		}
	}
	// Unmapped errors pass through unchanged in both directions.
	if got := ToFSError(ErrIsDir); got != ErrIsDir {
		t.Errorf("ToFSError(ErrIsDir) = %v", got)
	}
	other := errors.New("backend exploded")
	if got := FromFSError(other); got != other {
		t.Errorf("FromFSError(other) = %v", got)
	}
	if ToFSError(nil) != nil || FromFSError(nil) != nil {
		t.Error("nil must map to nil")
	}
	// Already-boundary errors are not double-wrapped on the way down.
	if got := FromFSError(ErrNotExist); got != ErrNotExist {
		t.Errorf("FromFSError(ErrNotExist) = %v", got)
	}
	// A wrapped os-style error keeps its message.
	wrapped := &fs.PathError{Op: "open", Path: "/x", Err: fs.ErrNotExist}
	down := FromFSError(wrapped)
	if down.Error() != wrapped.Error() {
		t.Errorf("FromFSError must preserve the detailed message: %q", down.Error())
	}
	if !errors.Is(down, ErrNotExist) {
		t.Error("FromFSError(wrapped) must match the boundary sentinel")
	}
}
