// Package posix models the POSIX I/O boundary PADLL interposes on.
//
// The paper's data plane "exposes a POSIX interface that reimplements 42
// calls from different operation classes, including data, metadata,
// extended attributes, and directory management" (§III-C). This package
// defines those 42 operations, their class taxonomy, the relative cost
// each imposes on a Lustre-like metadata server (§II: getattr needs only
// read locks; open/close/unlink update namespace state; rename/mkdir need
// atomicity), and the request/reply types every layer of the stack —
// application, interposition shim, data-plane stage, and file systems —
// exchanges.
package posix

import "fmt"

// Op identifies one of the 42 interposed POSIX calls.
type Op int

// The 42 interposed operations, grouped as in the paper's prototype.
const (
	// Data operations.
	OpRead Op = iota
	OpWrite
	OpPRead
	OpPWrite
	OpLSeek
	OpFSync
	OpFDataSync
	OpSync
	OpTruncate
	OpFTruncate

	// Metadata operations.
	OpOpen
	OpOpen64
	OpCreat
	OpClose
	OpStat
	OpFStat
	OpLStat
	OpStatFS
	OpFStatFS
	OpRename
	OpUnlink
	OpLink
	OpSymlink
	OpReadlink
	OpAccess
	OpMknod
	OpChmod
	OpChown
	OpUtime
	OpGetAttr // the Lustre-level getattr the traces report; stat family alias
	OpSetAttr

	// Directory management operations.
	OpMkdir
	OpRmdir
	OpOpendir
	OpReaddir
	OpClosedir

	// Extended attribute operations.
	OpGetXAttr
	OpLGetXAttr
	OpFGetXAttr
	OpSetXAttr
	OpListXAttr
	OpRemoveXAttr

	numOps
)

// NumOps is the number of interposed operations (42, as in the paper).
const NumOps = int(numOps)

// Class is the coarse operation class used for per-class QoS rules
// ("request class (e.g., metadata, data)", §III-A).
type Class int

// Operation classes as enumerated in §III-C.
const (
	ClassData Class = iota
	ClassMetadata
	ClassDirectory
	ClassExtAttr
	numClasses
)

// NumClasses is the number of operation classes.
const NumClasses = int(numClasses)

var classNames = [...]string{
	ClassData:      "data",
	ClassMetadata:  "metadata",
	ClassDirectory: "directory",
	ClassExtAttr:   "ext-attr",
}

// String returns the class name used in rules and reports.
func (c Class) String() string {
	if c < 0 || int(c) >= NumClasses {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// ParseClass maps a rule token to a Class.
func ParseClass(s string) (Class, error) {
	for i, n := range classNames {
		if n == s {
			return Class(i), nil
		}
	}
	return 0, fmt.Errorf("posix: unknown class %q", s)
}

type opInfo struct {
	name  string
	class Class
	// mdsCost is the relative cost the op imposes on the metadata server:
	// 0 for data ops that bypass the MDS, 1 for read-lock-only ops
	// (getattr/stat family), ~2.5 for namespace-state updates
	// (open/close/create/unlink), ~5 for atomic namespace ops
	// (rename/mkdir/link), per §II's lock-cost discussion.
	mdsCost float64
	// touchesData reports whether the op moves payload bytes through
	// OSS/OST servers.
	touchesData bool
}

var opTable = [...]opInfo{
	OpRead:      {"read", ClassData, 0, true},
	OpWrite:     {"write", ClassData, 0, true},
	OpPRead:     {"pread", ClassData, 0, true},
	OpPWrite:    {"pwrite", ClassData, 0, true},
	OpLSeek:     {"lseek", ClassData, 0, false},
	OpFSync:     {"fsync", ClassData, 0, true},
	OpFDataSync: {"fdatasync", ClassData, 0, true},
	OpSync:      {"sync", ClassData, 1, true},
	OpTruncate:  {"truncate", ClassData, 2.5, true},
	OpFTruncate: {"ftruncate", ClassData, 2.5, true},

	OpOpen:     {"open", ClassMetadata, 2.5, false},
	OpOpen64:   {"open64", ClassMetadata, 2.5, false},
	OpCreat:    {"creat", ClassMetadata, 3, false},
	OpClose:    {"close", ClassMetadata, 2.5, false},
	OpStat:     {"stat", ClassMetadata, 1, false},
	OpFStat:    {"fstat", ClassMetadata, 1, false},
	OpLStat:    {"lstat", ClassMetadata, 1, false},
	OpStatFS:   {"statfs", ClassMetadata, 1, false},
	OpFStatFS:  {"fstatfs", ClassMetadata, 1, false},
	OpRename:   {"rename", ClassMetadata, 5, false},
	OpUnlink:   {"unlink", ClassMetadata, 2.5, false},
	OpLink:     {"link", ClassMetadata, 5, false},
	OpSymlink:  {"symlink", ClassMetadata, 3, false},
	OpReadlink: {"readlink", ClassMetadata, 1, false},
	OpAccess:   {"access", ClassMetadata, 1, false},
	OpMknod:    {"mknod", ClassMetadata, 3, false},
	OpChmod:    {"chmod", ClassMetadata, 2, false},
	OpChown:    {"chown", ClassMetadata, 2, false},
	OpUtime:    {"utime", ClassMetadata, 2, false},
	OpGetAttr:  {"getattr", ClassMetadata, 1, false},
	OpSetAttr:  {"setattr", ClassMetadata, 2, false},

	OpMkdir:    {"mkdir", ClassDirectory, 5, false},
	OpRmdir:    {"rmdir", ClassDirectory, 5, false},
	OpOpendir:  {"opendir", ClassDirectory, 2.5, false},
	OpReaddir:  {"readdir", ClassDirectory, 1, false},
	OpClosedir: {"closedir", ClassDirectory, 2.5, false},

	OpGetXAttr:    {"getxattr", ClassExtAttr, 1, false},
	OpLGetXAttr:   {"lgetxattr", ClassExtAttr, 1, false},
	OpFGetXAttr:   {"fgetxattr", ClassExtAttr, 1, false},
	OpSetXAttr:    {"setxattr", ClassExtAttr, 2, false},
	OpListXAttr:   {"listxattr", ClassExtAttr, 1, false},
	OpRemoveXAttr: {"removexattr", ClassExtAttr, 2, false},
}

// String returns the libc name of the operation.
func (o Op) String() string {
	if !o.Valid() {
		return fmt.Sprintf("Op(%d)", int(o))
	}
	return opTable[o].name
}

// Valid reports whether o names one of the 42 operations.
func (o Op) Valid() bool { return o >= 0 && int(o) < NumOps }

// Class returns the operation class.
func (o Op) Class() Class {
	if !o.Valid() {
		return ClassMetadata
	}
	return opTable[o].class
}

// MDSCost returns the operation's relative cost at the metadata server.
func (o Op) MDSCost() float64 {
	if !o.Valid() {
		return 1
	}
	return opTable[o].mdsCost
}

// TouchesData reports whether the op moves payload through OSS/OSTs.
func (o Op) TouchesData() bool {
	if !o.Valid() {
		return false
	}
	return opTable[o].touchesData
}

// IsMetadataLike reports whether the op counts against metadata QoS
// budgets; directory and extended-attribute management are metadata work
// at the MDS even though the prototype classes them separately.
func (o Op) IsMetadataLike() bool {
	switch o.Class() {
	case ClassMetadata, ClassDirectory, ClassExtAttr:
		return true
	}
	return false
}

// ParseOp maps a libc call name to its Op.
func ParseOp(s string) (Op, error) {
	for i := 0; i < NumOps; i++ {
		if opTable[i].name == s {
			return Op(i), nil
		}
	}
	return 0, fmt.Errorf("posix: unknown operation %q", s)
}

// AllOps returns all 42 operations in declaration order.
func AllOps() []Op {
	out := make([]Op, NumOps)
	for i := range out {
		out[i] = Op(i)
	}
	return out
}

// OpsOfClass returns the operations belonging to class c.
func OpsOfClass(c Class) []Op {
	var out []Op
	for i := 0; i < NumOps; i++ {
		if Op(i).Class() == c {
			out = append(out, Op(i))
		}
	}
	return out
}
