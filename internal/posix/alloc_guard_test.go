package posix

import "testing"

// guardPayload is package-level so the backend double can refill reply
// scratch without allocating inside the measured loop.
var guardPayload = []byte("xyzw")

// guardFS is a FileSystem double that exercises every reply field the
// typed client methods read, reusing reply scratch per the Apply
// ownership contract.
var guardFS = FileSystemFunc(func(req *Request, rep *Reply) error {
	switch req.Op {
	case OpOpen, OpOpendir:
		rep.FD = 3
	case OpStat, OpFStat, OpGetAttr:
		rep.Info = zeroInfo
		rep.Info.Size = int64(len(guardPayload))
	case OpRead, OpPRead:
		rep.Data = append(rep.Data[:0], guardPayload...)
		rep.N = int64(len(rep.Data))
	case OpWrite, OpPWrite:
		rep.N = req.Size
	case OpLSeek:
		rep.N = req.Offset
	case OpReaddir:
		rep.Entries = append(rep.Entries[:0],
			DirEntry{Name: "a"}, DirEntry{Name: "b", IsDir: true})
	}
	return nil
})

// TestClientHotPathZeroAllocs is the runtime half of the //lint:hotpath
// contract on the client's typed fast-path methods: with pooled
// request/reply scratch and caller-provided buffers, a steady-state
// metadata or data call must not allocate at all.
func TestClientHotPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	c := NewClient(guardFS).WithJob("job1", "alice", 42)
	buf := make([]byte, len(guardPayload))
	entries := make([]DirEntry, 0, 4)

	ops := []struct {
		name string
		run  func() error
	}{
		{"Open+Close", func() error {
			fd, err := c.Open("/f", ORdOnly, 0)
			if err != nil {
				return err
			}
			return c.Close(fd)
		}},
		{"Stat", func() error { _, err := c.Stat("/f"); return err }},
		{"FStat", func() error { _, err := c.FStat(3); return err }},
		{"ReadInto", func() error { _, err := c.ReadInto(3, buf); return err }},
		{"PReadInto", func() error { _, err := c.PReadInto(3, buf, 0); return err }},
		{"Write", func() error { _, err := c.Write(3, guardPayload); return err }},
		{"PWrite", func() error { _, err := c.PWrite(3, guardPayload, 0); return err }},
		{"LSeek", func() error { _, err := c.LSeek(3, 0, 0); return err }},
		{"ReaddirInto", func() error {
			var err error
			entries, err = c.ReaddirInto("/d", entries[:0])
			return err
		}},
		{"Opendir+ReaddirFD+Closedir", func() error {
			fd, err := c.Opendir("/d")
			if err != nil {
				return err
			}
			if _, _, err := c.ReaddirFD(fd); err != nil {
				return err
			}
			return c.Closedir(fd)
		}},
	}
	for _, op := range ops {
		if err := op.run(); err != nil { // warm the pools
			t.Fatalf("%s: %v", op.name, err)
		}
		if avg := testing.AllocsPerRun(1000, func() {
			if err := op.run(); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("%s allocates %.3f allocs/op, want 0 — the pooled request/reply lifecycle is leaking", op.name, avg)
		}
	}
}

// TestReplyResetKeepsCapacity pins the pooling invariant the zero-alloc
// guards rely on: recycling a reply must truncate, not release, its
// slice scratch.
func TestReplyResetKeepsCapacity(t *testing.T) {
	rep := GetReply()
	rep.Data = append(rep.Data[:0], guardPayload...)
	rep.Entries = append(rep.Entries[:0], DirEntry{Name: "a"})
	rep.Names = append(rep.Names[:0], "user.k")
	dataCap, entCap, nameCap := cap(rep.Data), cap(rep.Entries), cap(rep.Names)
	rep.Reset()
	if len(rep.Data) != 0 || len(rep.Entries) != 0 || len(rep.Names) != 0 {
		t.Errorf("Reset left lengths %d/%d/%d, want 0", len(rep.Data), len(rep.Entries), len(rep.Names))
	}
	if cap(rep.Data) != dataCap || cap(rep.Entries) != entCap || cap(rep.Names) != nameCap {
		t.Errorf("Reset dropped capacity: %d/%d/%d, want %d/%d/%d",
			cap(rep.Data), cap(rep.Entries), cap(rep.Names), dataCap, entCap, nameCap)
	}
	PutReply(rep)
}
