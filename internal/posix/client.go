package posix

// Client restores a typed POSIX API on top of any FileSystem. Example
// applications and the workload generators are written against Client, so
// swapping a raw backend for a PADLL-interposed one is a one-line change —
// the transparency property the paper's LD_PRELOAD vector provides.
//
// Every typed method runs on pooled Request/Reply scratch: the request
// path allocates nothing of its own, and results that outlive the call
// (Read's buffer, Readdir's entries) are detached from the scratch before
// it is recycled. The *Into variants go further and fill caller-provided
// buffers, so tight loops can run fully alloc-free.
type Client struct {
	fs FileSystem
	// Context stamped onto every request for differentiation.
	JobID  string
	User   string
	PID    int
	Tenant string
}

// NewClient returns a client issuing requests against fs.
func NewClient(fs FileSystem) *Client { return &Client{fs: fs} }

// WithJob returns a copy of the client stamped with job context.
func (c *Client) WithJob(jobID, user string, pid int) *Client {
	cp := *c
	cp.JobID, cp.User, cp.PID = jobID, user, pid
	return &cp
}

var zeroDirEntry DirEntry

// apply stamps the client's differentiation context and forwards.
//
//lint:hotpath
func (c *Client) apply(req *Request, rep *Reply) error {
	req.JobID, req.User, req.PID, req.Tenant = c.JobID, c.User, c.PID, c.Tenant
	return c.fs.Apply(req, rep)
}

// Apply issues a raw request into caller-provided reply scratch, stamping
// the client's job context. It makes *Client itself a FileSystem, so
// layers can be composed either way around.
//
//lint:hotpath
func (c *Client) Apply(req *Request, rep *Reply) error { return c.apply(req, rep) }

// Do issues a raw request and returns a freshly allocated reply, for
// workload generators that synthesize arbitrary operation streams and
// keep replies around.
func (c *Client) Do(req *Request) (*Reply, error) {
	rep := new(Reply)
	if err := c.apply(req, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// Open opens path with flags and mode, returning a file descriptor.
//
//lint:hotpath
func (c *Client) Open(path string, flags int, mode FileMode) (int, error) {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path, req.Flags, req.Mode = OpOpen, path, flags, mode
	err := c.apply(req, rep)
	fd := rep.FD
	PutRequest(req)
	PutReply(rep)
	if err != nil {
		return -1, err
	}
	return fd, nil
}

// Creat creates path, equivalent to open(O_CREATE|O_WRONLY|O_TRUNC).
func (c *Client) Creat(path string, mode FileMode) (int, error) {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path, req.Flags, req.Mode = OpCreat, path, OCreate|OWrOnly|OTrunc, mode
	err := c.apply(req, rep)
	fd := rep.FD
	PutRequest(req)
	PutReply(rep)
	if err != nil {
		return -1, err
	}
	return fd, nil
}

// Close closes the descriptor.
//
//lint:hotpath
func (c *Client) Close(fd int) error {
	req, rep := GetRequest(), GetReply()
	req.Op, req.FD = OpClose, fd
	err := c.apply(req, rep)
	PutRequest(req)
	PutReply(rep)
	return err
}

// Read reads up to size bytes from the descriptor's current offset. The
// returned buffer is owned by the caller. For an alloc-free loop, use
// ReadInto.
func (c *Client) Read(fd int, size int64) ([]byte, error) {
	req, rep := GetRequest(), GetReply()
	req.Op, req.FD, req.Size = OpRead, fd, size
	err := c.apply(req, rep)
	data := rep.Data
	rep.Data = nil // ownership transfers to the caller
	PutRequest(req)
	PutReply(rep)
	if err != nil {
		return nil, err
	}
	return data, nil
}

// ReadInto reads up to len(p) bytes from the descriptor's current offset
// directly into p, returning the byte count. A zero count with a nil
// error means end of file. Allocation-free when the backend honors the
// reply-scratch contract.
//
//lint:hotpath
func (c *Client) ReadInto(fd int, p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	req, rep := GetRequest(), GetReply()
	req.Op, req.FD, req.Size = OpRead, fd, int64(len(p))
	rep.Data = p[:0] // backend appends straight into p's array
	err := c.apply(req, rep)
	data := rep.Data
	rep.Data = nil
	PutRequest(req)
	PutReply(rep)
	if err != nil {
		return 0, err
	}
	// Usually a self-copy; real movement only if the backend grew the
	// slice past p's capacity.
	return copy(p, data), nil
}

// Write writes data at the descriptor's current offset.
//
//lint:hotpath
func (c *Client) Write(fd int, data []byte) (int64, error) {
	req, rep := GetRequest(), GetReply()
	req.Op, req.FD, req.Data, req.Size = OpWrite, fd, data, int64(len(data))
	err := c.apply(req, rep)
	n := rep.N
	PutRequest(req)
	PutReply(rep)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// PRead reads size bytes at offset without moving the file offset. The
// returned buffer is owned by the caller; see PReadInto for the
// alloc-free variant.
func (c *Client) PRead(fd int, size, offset int64) ([]byte, error) {
	req, rep := GetRequest(), GetReply()
	req.Op, req.FD, req.Size, req.Offset = OpPRead, fd, size, offset
	err := c.apply(req, rep)
	data := rep.Data
	rep.Data = nil
	PutRequest(req)
	PutReply(rep)
	if err != nil {
		return nil, err
	}
	return data, nil
}

// PReadInto reads up to len(p) bytes at offset into p without moving the
// file offset. A zero count with a nil error means end of file.
//
//lint:hotpath
func (c *Client) PReadInto(fd int, p []byte, offset int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	req, rep := GetRequest(), GetReply()
	req.Op, req.FD, req.Size, req.Offset = OpPRead, fd, int64(len(p)), offset
	rep.Data = p[:0]
	err := c.apply(req, rep)
	data := rep.Data
	rep.Data = nil
	PutRequest(req)
	PutReply(rep)
	if err != nil {
		return 0, err
	}
	return copy(p, data), nil
}

// PWrite writes data at offset without moving the file offset.
//
//lint:hotpath
func (c *Client) PWrite(fd int, data []byte, offset int64) (int64, error) {
	req, rep := GetRequest(), GetReply()
	req.Op, req.FD, req.Data, req.Size, req.Offset = OpPWrite, fd, data, int64(len(data)), offset
	err := c.apply(req, rep)
	n := rep.N
	PutRequest(req)
	PutReply(rep)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// LSeek repositions the file offset (whence in Flags: 0=set,1=cur,2=end).
//
//lint:hotpath
func (c *Client) LSeek(fd int, offset int64, whence int) (int64, error) {
	req, rep := GetRequest(), GetReply()
	req.Op, req.FD, req.Offset, req.Flags = OpLSeek, fd, offset, whence
	err := c.apply(req, rep)
	n := rep.N
	PutRequest(req)
	PutReply(rep)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// FSync flushes the descriptor.
func (c *Client) FSync(fd int) error {
	req, rep := GetRequest(), GetReply()
	req.Op, req.FD = OpFSync, fd
	err := c.apply(req, rep)
	PutRequest(req)
	PutReply(rep)
	return err
}

// Stat stats the path.
//
//lint:hotpath
func (c *Client) Stat(path string) (FileInfo, error) {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path = OpStat, path
	err := c.apply(req, rep)
	info := rep.Info
	PutRequest(req)
	PutReply(rep)
	if err != nil {
		return zeroInfo, err
	}
	return info, nil
}

// GetAttr is the Lustre-level getattr the ABCI traces report; it stats
// the path acquiring only read locks at the MDS.
func (c *Client) GetAttr(path string) (FileInfo, error) {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path = OpGetAttr, path
	err := c.apply(req, rep)
	info := rep.Info
	PutRequest(req)
	PutReply(rep)
	if err != nil {
		return zeroInfo, err
	}
	return info, nil
}

// SetAttr updates the path's mode.
func (c *Client) SetAttr(path string, mode FileMode) error {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path, req.Mode = OpSetAttr, path, mode
	err := c.apply(req, rep)
	PutRequest(req)
	PutReply(rep)
	return err
}

// FStat stats the descriptor.
//
//lint:hotpath
func (c *Client) FStat(fd int) (FileInfo, error) {
	req, rep := GetRequest(), GetReply()
	req.Op, req.FD = OpFStat, fd
	err := c.apply(req, rep)
	info := rep.Info
	PutRequest(req)
	PutReply(rep)
	if err != nil {
		return zeroInfo, err
	}
	return info, nil
}

// Rename atomically renames oldPath to newPath.
func (c *Client) Rename(oldPath, newPath string) error {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path, req.NewPath = OpRename, oldPath, newPath
	err := c.apply(req, rep)
	PutRequest(req)
	PutReply(rep)
	return err
}

// Unlink removes the file at path.
func (c *Client) Unlink(path string) error {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path = OpUnlink, path
	err := c.apply(req, rep)
	PutRequest(req)
	PutReply(rep)
	return err
}

// Mkdir creates a directory.
func (c *Client) Mkdir(path string, mode FileMode) error {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path, req.Mode = OpMkdir, path, mode
	err := c.apply(req, rep)
	PutRequest(req)
	PutReply(rep)
	return err
}

// Rmdir removes an empty directory.
func (c *Client) Rmdir(path string) error {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path = OpRmdir, path
	err := c.apply(req, rep)
	PutRequest(req)
	PutReply(rep)
	return err
}

// Readdir lists a directory. The returned slice is owned by the caller;
// ReaddirInto reuses caller scratch instead.
func (c *Client) Readdir(path string) ([]DirEntry, error) {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path = OpReaddir, path
	err := c.apply(req, rep)
	entries := rep.Entries
	rep.Entries = nil // ownership transfers to the caller
	PutRequest(req)
	PutReply(rep)
	if err != nil {
		return nil, err
	}
	return entries, nil
}

// ReaddirInto lists a directory, appending entries to dst (which may be
// nil) and returning the extended slice. Entry names remain valid after
// the call; the slice stays owned by the caller, so loops can reuse one
// buffer across directories.
//
//lint:hotpath
func (c *Client) ReaddirInto(path string, dst []DirEntry) ([]DirEntry, error) {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path = OpReaddir, path
	rep.Entries = dst[:0]
	err := c.apply(req, rep)
	entries := rep.Entries
	rep.Entries = nil
	PutRequest(req)
	PutReply(rep)
	if err != nil {
		return dst, err
	}
	return entries, nil
}

// Truncate sets the file size.
func (c *Client) Truncate(path string, size int64) error {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path, req.Size = OpTruncate, path, size
	err := c.apply(req, rep)
	PutRequest(req)
	PutReply(rep)
	return err
}

// StatFS reports file-system statistics for the mount containing path.
func (c *Client) StatFS(path string) (FSStat, error) {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path = OpStatFS, path
	err := c.apply(req, rep)
	stat := rep.Stat
	PutRequest(req)
	PutReply(rep)
	if err != nil {
		return zeroStat, err
	}
	return stat, nil
}

// SetXAttr sets an extended attribute.
func (c *Client) SetXAttr(path, name string, value []byte) error {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path, req.Name, req.Value = OpSetXAttr, path, name, value
	err := c.apply(req, rep)
	PutRequest(req)
	PutReply(rep)
	return err
}

// GetXAttr reads an extended attribute. The returned buffer is owned by
// the caller.
func (c *Client) GetXAttr(path, name string) ([]byte, error) {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path, req.Name = OpGetXAttr, path, name
	err := c.apply(req, rep)
	data := rep.Data
	rep.Data = nil
	PutRequest(req)
	PutReply(rep)
	if err != nil {
		return nil, err
	}
	return data, nil
}

// ListXAttr lists extended attribute names.
func (c *Client) ListXAttr(path string) ([]string, error) {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path = OpListXAttr, path
	err := c.apply(req, rep)
	names := rep.Names
	rep.Names = nil
	PutRequest(req)
	PutReply(rep)
	if err != nil {
		return nil, err
	}
	return names, nil
}

// RemoveXAttr removes an extended attribute.
func (c *Client) RemoveXAttr(path, name string) error {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path, req.Name = OpRemoveXAttr, path, name
	err := c.apply(req, rep)
	PutRequest(req)
	PutReply(rep)
	return err
}

// Access checks permissions on path (mode bits in Flags).
func (c *Client) Access(path string, mode int) error {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path, req.Flags = OpAccess, path, mode
	err := c.apply(req, rep)
	PutRequest(req)
	PutReply(rep)
	return err
}

// Link creates a hard link newPath referring to oldPath's inode.
func (c *Client) Link(oldPath, newPath string) error {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path, req.NewPath = OpLink, oldPath, newPath
	err := c.apply(req, rep)
	PutRequest(req)
	PutReply(rep)
	return err
}

// Symlink creates a symbolic link at linkPath pointing at target.
func (c *Client) Symlink(target, linkPath string) error {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path, req.NewPath = OpSymlink, target, linkPath
	err := c.apply(req, rep)
	PutRequest(req)
	PutReply(rep)
	return err
}

// Readlink returns a symbolic link's target.
func (c *Client) Readlink(path string) (string, error) {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path = OpReadlink, path
	err := c.apply(req, rep)
	target := string(rep.Data)
	PutRequest(req)
	PutReply(rep)
	if err != nil {
		return "", err
	}
	return target, nil
}

// Opendir opens a directory stream; entries are read one at a time with
// ReaddirFD and the stream is released with Closedir.
//
//lint:hotpath
func (c *Client) Opendir(path string) (int, error) {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path = OpOpendir, path
	err := c.apply(req, rep)
	fd := rep.FD
	PutRequest(req)
	PutReply(rep)
	if err != nil {
		return -1, err
	}
	return fd, nil
}

// ReaddirFD reads the next entry from a directory stream; ok is false at
// end of directory.
//
//lint:hotpath
func (c *Client) ReaddirFD(fd int) (DirEntry, bool, error) {
	req, rep := GetRequest(), GetReply()
	req.Op, req.FD = OpReaddir, fd
	err := c.apply(req, rep)
	entry, ok := zeroDirEntry, false
	if err == nil && len(rep.Entries) > 0 {
		entry, ok = rep.Entries[0], true
	}
	PutRequest(req)
	PutReply(rep)
	if err != nil {
		return zeroDirEntry, false, err
	}
	return entry, ok, nil
}

// Closedir releases a directory stream.
//
//lint:hotpath
func (c *Client) Closedir(fd int) error {
	req, rep := GetRequest(), GetReply()
	req.Op, req.FD = OpClosedir, fd
	err := c.apply(req, rep)
	PutRequest(req)
	PutReply(rep)
	return err
}

// Chmod updates path's permission bits.
func (c *Client) Chmod(path string, mode FileMode) error {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path, req.Mode = OpChmod, path, mode
	err := c.apply(req, rep)
	PutRequest(req)
	PutReply(rep)
	return err
}

// Chown updates path's owner and group.
func (c *Client) Chown(path string, uid, gid int) error {
	req, rep := GetRequest(), GetReply()
	// uid/gid travel in the spare numeric fields, as the backends expect.
	req.Op, req.Path, req.Offset, req.Size = OpChown, path, int64(uid), int64(gid)
	err := c.apply(req, rep)
	PutRequest(req)
	PutReply(rep)
	return err
}

// Utime refreshes path's modification time.
func (c *Client) Utime(path string) error {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path = OpUtime, path
	err := c.apply(req, rep)
	PutRequest(req)
	PutReply(rep)
	return err
}

// FTruncate sets the open file's size.
func (c *Client) FTruncate(fd int, size int64) error {
	req, rep := GetRequest(), GetReply()
	req.Op, req.FD, req.Size = OpFTruncate, fd, size
	err := c.apply(req, rep)
	PutRequest(req)
	PutReply(rep)
	return err
}

// FDataSync flushes the descriptor's data (without metadata flush).
func (c *Client) FDataSync(fd int) error {
	req, rep := GetRequest(), GetReply()
	req.Op, req.FD = OpFDataSync, fd
	err := c.apply(req, rep)
	PutRequest(req)
	PutReply(rep)
	return err
}

// Sync flushes the whole file system.
func (c *Client) Sync() error {
	req, rep := GetRequest(), GetReply()
	req.Op = OpSync
	err := c.apply(req, rep)
	PutRequest(req)
	PutReply(rep)
	return err
}

// Mknod creates a file-system node without opening it.
func (c *Client) Mknod(path string, mode FileMode) error {
	req, rep := GetRequest(), GetReply()
	req.Op, req.Path, req.Mode = OpMknod, path, mode
	err := c.apply(req, rep)
	PutRequest(req)
	PutReply(rep)
	return err
}
