package posix

// Client restores a typed POSIX API on top of any FileSystem. Example
// applications and the workload generators are written against Client, so
// swapping a raw backend for a PADLL-interposed one is a one-line change —
// the transparency property the paper's LD_PRELOAD vector provides.
type Client struct {
	fs FileSystem
	// Context stamped onto every request for differentiation.
	JobID  string
	User   string
	PID    int
	Tenant string
}

// NewClient returns a client issuing requests against fs.
func NewClient(fs FileSystem) *Client { return &Client{fs: fs} }

// WithJob returns a copy of the client stamped with job context.
func (c *Client) WithJob(jobID, user string, pid int) *Client {
	cp := *c
	cp.JobID, cp.User, cp.PID = jobID, user, pid
	return &cp
}

func (c *Client) apply(req *Request) (*Reply, error) {
	req.JobID, req.User, req.PID, req.Tenant = c.JobID, c.User, c.PID, c.Tenant
	return c.fs.Apply(req)
}

// Open opens path with flags and mode, returning a file descriptor.
func (c *Client) Open(path string, flags int, mode FileMode) (int, error) {
	rep, err := c.apply(&Request{Op: OpOpen, Path: path, Flags: flags, Mode: mode})
	if err != nil {
		return -1, err
	}
	return rep.FD, nil
}

// Creat creates path, equivalent to open(O_CREATE|O_WRONLY|O_TRUNC).
func (c *Client) Creat(path string, mode FileMode) (int, error) {
	rep, err := c.apply(&Request{Op: OpCreat, Path: path, Flags: OCreate | OWrOnly | OTrunc, Mode: mode})
	if err != nil {
		return -1, err
	}
	return rep.FD, nil
}

// Close closes the descriptor.
func (c *Client) Close(fd int) error {
	_, err := c.apply(&Request{Op: OpClose, FD: fd})
	return err
}

// Read reads up to size bytes from the descriptor's current offset.
func (c *Client) Read(fd int, size int64) ([]byte, error) {
	rep, err := c.apply(&Request{Op: OpRead, FD: fd, Size: size})
	if err != nil {
		return nil, err
	}
	return rep.Data, nil
}

// Write writes data at the descriptor's current offset.
func (c *Client) Write(fd int, data []byte) (int64, error) {
	rep, err := c.apply(&Request{Op: OpWrite, FD: fd, Data: data, Size: int64(len(data))})
	if err != nil {
		return 0, err
	}
	return rep.N, nil
}

// PRead reads size bytes at offset without moving the file offset.
func (c *Client) PRead(fd int, size, offset int64) ([]byte, error) {
	rep, err := c.apply(&Request{Op: OpPRead, FD: fd, Size: size, Offset: offset})
	if err != nil {
		return nil, err
	}
	return rep.Data, nil
}

// PWrite writes data at offset without moving the file offset.
func (c *Client) PWrite(fd int, data []byte, offset int64) (int64, error) {
	rep, err := c.apply(&Request{Op: OpPWrite, FD: fd, Data: data, Size: int64(len(data)), Offset: offset})
	if err != nil {
		return 0, err
	}
	return rep.N, nil
}

// LSeek repositions the file offset (whence in Flags: 0=set,1=cur,2=end).
func (c *Client) LSeek(fd int, offset int64, whence int) (int64, error) {
	rep, err := c.apply(&Request{Op: OpLSeek, FD: fd, Offset: offset, Flags: whence})
	if err != nil {
		return 0, err
	}
	return rep.N, nil
}

// FSync flushes the descriptor.
func (c *Client) FSync(fd int) error {
	_, err := c.apply(&Request{Op: OpFSync, FD: fd})
	return err
}

// Stat stats the path.
func (c *Client) Stat(path string) (FileInfo, error) {
	rep, err := c.apply(&Request{Op: OpStat, Path: path})
	if err != nil {
		return FileInfo{}, err
	}
	return rep.Info, nil
}

// GetAttr is the Lustre-level getattr the ABCI traces report; it stats
// the path acquiring only read locks at the MDS.
func (c *Client) GetAttr(path string) (FileInfo, error) {
	rep, err := c.apply(&Request{Op: OpGetAttr, Path: path})
	if err != nil {
		return FileInfo{}, err
	}
	return rep.Info, nil
}

// SetAttr updates the path's mode.
func (c *Client) SetAttr(path string, mode FileMode) error {
	_, err := c.apply(&Request{Op: OpSetAttr, Path: path, Mode: mode})
	return err
}

// FStat stats the descriptor.
func (c *Client) FStat(fd int) (FileInfo, error) {
	rep, err := c.apply(&Request{Op: OpFStat, FD: fd})
	if err != nil {
		return FileInfo{}, err
	}
	return rep.Info, nil
}

// Rename atomically renames oldPath to newPath.
func (c *Client) Rename(oldPath, newPath string) error {
	_, err := c.apply(&Request{Op: OpRename, Path: oldPath, NewPath: newPath})
	return err
}

// Unlink removes the file at path.
func (c *Client) Unlink(path string) error {
	_, err := c.apply(&Request{Op: OpUnlink, Path: path})
	return err
}

// Mkdir creates a directory.
func (c *Client) Mkdir(path string, mode FileMode) error {
	_, err := c.apply(&Request{Op: OpMkdir, Path: path, Mode: mode})
	return err
}

// Rmdir removes an empty directory.
func (c *Client) Rmdir(path string) error {
	_, err := c.apply(&Request{Op: OpRmdir, Path: path})
	return err
}

// Readdir lists a directory.
func (c *Client) Readdir(path string) ([]DirEntry, error) {
	rep, err := c.apply(&Request{Op: OpReaddir, Path: path})
	if err != nil {
		return nil, err
	}
	return rep.Entries, nil
}

// Truncate sets the file size.
func (c *Client) Truncate(path string, size int64) error {
	_, err := c.apply(&Request{Op: OpTruncate, Path: path, Size: size})
	return err
}

// StatFS reports file-system statistics for the mount containing path.
func (c *Client) StatFS(path string) (FSStat, error) {
	rep, err := c.apply(&Request{Op: OpStatFS, Path: path})
	if err != nil {
		return FSStat{}, err
	}
	return rep.Stat, nil
}

// SetXAttr sets an extended attribute.
func (c *Client) SetXAttr(path, name string, value []byte) error {
	_, err := c.apply(&Request{Op: OpSetXAttr, Path: path, Name: name, Value: value})
	return err
}

// GetXAttr reads an extended attribute.
func (c *Client) GetXAttr(path, name string) ([]byte, error) {
	rep, err := c.apply(&Request{Op: OpGetXAttr, Path: path, Name: name})
	if err != nil {
		return nil, err
	}
	return rep.Data, nil
}

// ListXAttr lists extended attribute names.
func (c *Client) ListXAttr(path string) ([]string, error) {
	rep, err := c.apply(&Request{Op: OpListXAttr, Path: path})
	if err != nil {
		return nil, err
	}
	return rep.Names, nil
}

// RemoveXAttr removes an extended attribute.
func (c *Client) RemoveXAttr(path, name string) error {
	_, err := c.apply(&Request{Op: OpRemoveXAttr, Path: path, Name: name})
	return err
}

// Access checks permissions on path (mode bits in Flags).
func (c *Client) Access(path string, mode int) error {
	_, err := c.apply(&Request{Op: OpAccess, Path: path, Flags: mode})
	return err
}

// Do issues a raw request, for workload generators that synthesize
// arbitrary operation streams.
func (c *Client) Do(req *Request) (*Reply, error) { return c.apply(req) }

// Link creates a hard link newPath referring to oldPath's inode.
func (c *Client) Link(oldPath, newPath string) error {
	_, err := c.apply(&Request{Op: OpLink, Path: oldPath, NewPath: newPath})
	return err
}

// Symlink creates a symbolic link at linkPath pointing at target.
func (c *Client) Symlink(target, linkPath string) error {
	_, err := c.apply(&Request{Op: OpSymlink, Path: target, NewPath: linkPath})
	return err
}

// Readlink returns a symbolic link's target.
func (c *Client) Readlink(path string) (string, error) {
	rep, err := c.apply(&Request{Op: OpReadlink, Path: path})
	if err != nil {
		return "", err
	}
	return string(rep.Data), nil
}

// Opendir opens a directory stream; entries are read one at a time with
// ReaddirFD and the stream is released with Closedir.
func (c *Client) Opendir(path string) (int, error) {
	rep, err := c.apply(&Request{Op: OpOpendir, Path: path})
	if err != nil {
		return -1, err
	}
	return rep.FD, nil
}

// ReaddirFD reads the next entry from a directory stream; ok is false at
// end of directory.
func (c *Client) ReaddirFD(fd int) (DirEntry, bool, error) {
	rep, err := c.apply(&Request{Op: OpReaddir, FD: fd})
	if err != nil {
		return DirEntry{}, false, err
	}
	if len(rep.Entries) == 0 {
		return DirEntry{}, false, nil
	}
	return rep.Entries[0], true, nil
}

// Closedir releases a directory stream.
func (c *Client) Closedir(fd int) error {
	_, err := c.apply(&Request{Op: OpClosedir, FD: fd})
	return err
}

// Chmod updates path's permission bits.
func (c *Client) Chmod(path string, mode FileMode) error {
	_, err := c.apply(&Request{Op: OpChmod, Path: path, Mode: mode})
	return err
}

// Chown updates path's owner and group.
func (c *Client) Chown(path string, uid, gid int) error {
	// uid/gid travel in the spare numeric fields, as the backends expect.
	_, err := c.apply(&Request{Op: OpChown, Path: path, Offset: int64(uid), Size: int64(gid)})
	return err
}

// Utime refreshes path's modification time.
func (c *Client) Utime(path string) error {
	_, err := c.apply(&Request{Op: OpUtime, Path: path})
	return err
}

// FTruncate sets the open file's size.
func (c *Client) FTruncate(fd int, size int64) error {
	_, err := c.apply(&Request{Op: OpFTruncate, FD: fd, Size: size})
	return err
}

// FDataSync flushes the descriptor's data (without metadata flush).
func (c *Client) FDataSync(fd int) error {
	_, err := c.apply(&Request{Op: OpFDataSync, FD: fd})
	return err
}

// Sync flushes the whole file system.
func (c *Client) Sync() error {
	_, err := c.apply(&Request{Op: OpSync})
	return err
}

// Mknod creates a file-system node without opening it.
func (c *Client) Mknod(path string, mode FileMode) error {
	_, err := c.apply(&Request{Op: OpMknod, Path: path, Mode: mode})
	return err
}
