// Typed adapters between the interposed POSIX boundary and Go's standard
// io/fs contract. The paper's data plane is application-agnostic: any
// program that speaks the storage boundary generates the metadata traffic
// PADLL differentiates and throttles (§III-C). In Go, "any program" means
// the io/fs ecosystem — fs.WalkDir, testing/fstest, archive/*, template
// loading — so this file provides the bidirectional conversions the
// internal/vfs bridge and the internal/osfs backend are built from:
// FileMode, FileInfo and DirEntry in both directions, and the error
// translation that lets errors.Is(err, fs.ErrNotExist)-style code work
// unmodified over an interposed stack.
package posix

import (
	"errors"
	"io/fs"
	"time"
)

// FSMode converts an interposed mode to its io/fs equivalent: permission
// bits plus the directory flag.
func (m FileMode) FSMode() fs.FileMode {
	fm := fs.FileMode(m & 0o777)
	if m.IsDir() {
		fm |= fs.ModeDir
	}
	return fm
}

// ModeFromFS converts an io/fs mode to the interposed form. Type bits
// other than ModeDir (symlink, device, ...) carry no equivalent on the
// boundary and are dropped; the permission bits and directory flag
// survive round trips.
func ModeFromFS(m fs.FileMode) FileMode {
	pm := FileMode(m.Perm())
	if m.IsDir() {
		pm |= ModeDir
	}
	return pm
}

// fsInfo adapts a FileInfo to fs.FileInfo.
type fsInfo struct{ fi FileInfo }

func (i fsInfo) Name() string       { return i.fi.Name }
func (i fsInfo) Size() int64        { return i.fi.Size }
func (i fsInfo) Mode() fs.FileMode  { return i.fi.Mode.FSMode() }
func (i fsInfo) ModTime() time.Time { return i.fi.ModTime }
func (i fsInfo) IsDir() bool        { return i.fi.Mode.IsDir() }

// Sys exposes the boundary-level FileInfo, so callers that know they are
// over an interposed stack can recover Inode/Nlink/UID/GID.
func (i fsInfo) Sys() any { return i.fi }

// FSInfo adapts the stat payload to the io/fs interface.
func (fi FileInfo) FSInfo() fs.FileInfo { return fsInfo{fi} }

// FSInfoView is a reusable fs.FileInfo over an embedded boundary payload.
// FSInfo boxes a fresh value on every call; a view embedded in a
// longer-lived struct (a direntry slab, a file handle) is filled in place
// and handed out as &view — the interface holds a pointer, so repeated
// Info() calls add zero allocations. The payload must not be refilled
// while a returned interface is still in use.
type FSInfoView struct{ I FileInfo }

func (v *FSInfoView) Name() string       { return v.I.Name }
func (v *FSInfoView) Size() int64        { return v.I.Size }
func (v *FSInfoView) Mode() fs.FileMode  { return v.I.Mode.FSMode() }
func (v *FSInfoView) ModTime() time.Time { return v.I.ModTime }
func (v *FSInfoView) IsDir() bool        { return v.I.Mode.IsDir() }

// Sys exposes the boundary-level FileInfo, matching fsInfo.Sys.
func (v *FSInfoView) Sys() any { return v.I }

// FileInfoFromFS converts a standard fs.FileInfo (e.g. from os.Stat) to
// the boundary's stat payload. Inode, Nlink, UID and GID are not part of
// the io/fs contract and are left zero; OS-backed file systems fill them
// from the platform stat structure.
func FileInfoFromFS(info fs.FileInfo) FileInfo {
	switch fi := info.(type) {
	case fsInfo:
		return fi.fi // round trip: recover the original payload
	case *FSInfoView:
		return fi.I
	}
	return FileInfo{
		Name:    info.Name(),
		Size:    info.Size(),
		Mode:    ModeFromFS(info.Mode()),
		ModTime: info.ModTime(),
		Nlink:   1,
	}
}

// fsDirEntry adapts a DirEntry to fs.DirEntry with a lazy stat.
type fsDirEntry struct {
	e    DirEntry
	stat func() (FileInfo, error)
}

func (d fsDirEntry) Name() string { return d.e.Name }
func (d fsDirEntry) IsDir() bool  { return d.e.IsDir }

func (d fsDirEntry) Type() fs.FileMode {
	if d.e.IsDir {
		return fs.ModeDir
	}
	return 0
}

// Info stats the entry through the provided callback — on an interposed
// stack each call is one more classified, rate-limited getattr, exactly
// the per-entry stat storm fs.WalkDir-based tools generate.
func (d fsDirEntry) Info() (fs.FileInfo, error) {
	fi, err := d.stat()
	if err != nil {
		return nil, err
	}
	return fi.FSInfo(), nil
}

// FSDirEntry adapts one readdir result to fs.DirEntry. stat is invoked
// lazily by Info; it must return the entry's full stat payload (or the
// boundary error if the entry vanished since the readdir).
func FSDirEntry(e DirEntry, stat func() (FileInfo, error)) fs.DirEntry {
	return fsDirEntry{e: e, stat: stat}
}

// DirEntryFromFS converts a standard fs.DirEntry to the boundary's
// readdir payload.
func DirEntryFromFS(e fs.DirEntry) DirEntry {
	return DirEntry{Name: e.Name(), IsDir: e.IsDir()}
}

// fsErrors pairs each boundary sentinel with its io/fs equivalent, in
// both directions.
var fsErrors = [...]struct{ posix, std error }{
	{ErrNotExist, fs.ErrNotExist},
	{ErrExist, fs.ErrExist},
	{ErrInvalid, fs.ErrInvalid},
	{ErrBadFD, fs.ErrClosed},
	{ErrNotSupported, errors.ErrUnsupported},
}

// bridgedErr satisfies errors.Is for both error vocabularies: the
// original error it wraps (cause) and the sentinel from the other
// vocabulary (alias).
type bridgedErr struct{ cause, alias error }

func (e bridgedErr) Error() string { return e.cause.Error() }

func (e bridgedErr) Is(target error) bool {
	return errors.Is(e.cause, target) || (e.alias != nil && errors.Is(e.alias, target))
}

// Unwrap exposes the original error as the canonical cause.
func (e bridgedErr) Unwrap() error { return e.cause }

// ToFSError lifts a boundary error into the io/fs vocabulary: the result
// still matches the posix sentinel under errors.Is, and additionally
// matches the fs equivalent (fs.ErrNotExist, fs.ErrExist, fs.ErrInvalid,
// fs.ErrClosed, errors.ErrUnsupported) where one exists. Errors with no
// mapping (ErrIsDir, ErrNotEmpty, ...) pass through unchanged.
func ToFSError(err error) error {
	if err == nil {
		return nil
	}
	for _, m := range fsErrors {
		if errors.Is(err, m.posix) {
			return bridgedErr{cause: err, alias: m.std}
		}
	}
	return err
}

// FromFSError lowers an io/fs-vocabulary error onto the boundary
// sentinels: an error matching fs.ErrNotExist becomes one that also
// matches ErrNotExist, and so on. Unmapped errors pass through. OS
// backends use this so an interposed application sees the same error
// identities over a real kernel file system as over the in-memory model.
func FromFSError(err error) error {
	if err == nil {
		return nil
	}
	for _, m := range fsErrors {
		if errors.Is(err, m.posix) {
			return err // already speaks the boundary vocabulary
		}
		if errors.Is(err, m.std) {
			return bridgedErr{cause: err, alias: m.posix}
		}
	}
	return err
}
