package posix

import (
	"testing"
	"testing/quick"
)

func TestExactly42Ops(t *testing.T) {
	if NumOps != 42 {
		t.Fatalf("NumOps = %d, want 42 (the paper's prototype reimplements 42 calls)", NumOps)
	}
	if len(AllOps()) != 42 {
		t.Fatalf("AllOps returned %d ops", len(AllOps()))
	}
}

func TestEveryOpHasInfo(t *testing.T) {
	seen := map[string]Op{}
	for _, op := range AllOps() {
		name := op.String()
		if name == "" {
			t.Errorf("op %d has no name", int(op))
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("duplicate op name %q for %d and %d", name, int(prev), int(op))
		}
		seen[name] = op
		if c := op.Class(); c < 0 || int(c) >= NumClasses {
			t.Errorf("%s has invalid class %d", name, int(c))
		}
	}
}

func TestOpClassMembership(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{OpRead, ClassData}, {OpWrite, ClassData}, {OpFSync, ClassData},
		{OpOpen, ClassMetadata}, {OpClose, ClassMetadata}, {OpGetAttr, ClassMetadata},
		{OpRename, ClassMetadata}, {OpStat, ClassMetadata},
		{OpMkdir, ClassDirectory}, {OpReaddir, ClassDirectory},
		{OpGetXAttr, ClassExtAttr}, {OpSetXAttr, ClassExtAttr},
	}
	for _, c := range cases {
		if got := c.op.Class(); got != c.want {
			t.Errorf("%s.Class() = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestClassPartitionCoversAllOps(t *testing.T) {
	total := 0
	for c := 0; c < NumClasses; c++ {
		total += len(OpsOfClass(Class(c)))
	}
	if total != NumOps {
		t.Fatalf("class partition covers %d ops, want %d", total, NumOps)
	}
}

func TestMDSCostOrdering(t *testing.T) {
	// §II: getattr (read locks) < open/close/unlink (namespace updates)
	// < rename/mkdir (atomicity).
	if !(OpGetAttr.MDSCost() < OpOpen.MDSCost()) {
		t.Error("getattr must be cheaper than open at the MDS")
	}
	if !(OpOpen.MDSCost() < OpRename.MDSCost()) {
		t.Error("open must be cheaper than rename at the MDS")
	}
	if !(OpClose.MDSCost() < OpMkdir.MDSCost()) {
		t.Error("close must be cheaper than mkdir at the MDS")
	}
	if OpRead.MDSCost() != 0 || OpWrite.MDSCost() != 0 {
		t.Error("pure data ops must not cost MDS capacity")
	}
}

func TestTouchesData(t *testing.T) {
	if !OpRead.TouchesData() || !OpWrite.TouchesData() {
		t.Error("read/write must touch data")
	}
	if OpOpen.TouchesData() || OpGetAttr.TouchesData() {
		t.Error("open/getattr must not touch data")
	}
}

func TestIsMetadataLike(t *testing.T) {
	for _, op := range []Op{OpOpen, OpClose, OpGetAttr, OpMkdir, OpGetXAttr} {
		if !op.IsMetadataLike() {
			t.Errorf("%s should be metadata-like", op)
		}
	}
	for _, op := range []Op{OpRead, OpWrite, OpLSeek} {
		if op.IsMetadataLike() {
			t.Errorf("%s should not be metadata-like", op)
		}
	}
}

func TestParseOpRoundTrip(t *testing.T) {
	for _, op := range AllOps() {
		got, err := ParseOp(op.String())
		if err != nil {
			t.Errorf("ParseOp(%q): %v", op.String(), err)
			continue
		}
		if got != op {
			t.Errorf("ParseOp(%q) = %v, want %v", op.String(), got, op)
		}
	}
	if _, err := ParseOp("no-such-op"); err == nil {
		t.Error("ParseOp accepted an unknown name")
	}
}

func TestParseClassRoundTrip(t *testing.T) {
	for c := 0; c < NumClasses; c++ {
		got, err := ParseClass(Class(c).String())
		if err != nil || got != Class(c) {
			t.Errorf("ParseClass(%q) = %v, %v", Class(c).String(), got, err)
		}
	}
	if _, err := ParseClass("bogus"); err == nil {
		t.Error("ParseClass accepted an unknown name")
	}
}

func TestInvalidOpDefaults(t *testing.T) {
	bad := Op(999)
	if bad.Valid() {
		t.Error("Op(999).Valid() = true")
	}
	if bad.String() == "" {
		t.Error("invalid op must still render")
	}
	if bad.MDSCost() != 1 || bad.TouchesData() {
		t.Error("invalid op defaults wrong")
	}
}

func TestFileModeBits(t *testing.T) {
	m := ModeDir | 0o755
	if !m.IsDir() {
		t.Error("IsDir lost")
	}
	if m.Perm() != 0o755 {
		t.Errorf("Perm = %o, want 755", m.Perm())
	}
}

func TestRequestString(t *testing.T) {
	cases := []struct {
		req  Request
		want string
	}{
		{Request{Op: OpOpen, Path: "/a"}, "open(/a)"},
		{Request{Op: OpRename, Path: "/a", NewPath: "/b"}, "rename(/a -> /b)"},
		{Request{Op: OpClose, FD: 3}, "close(fd=3)"},
	}
	for _, c := range cases {
		if got := c.req.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

// recorder is a FileSystem double that records the last request. It
// copies the request: the client recycles req into a pool as soon as
// Apply returns, so retaining the pointer would observe the reset.
type recorder struct{ last Request }

func (r *recorder) Apply(req *Request, rep *Reply) error {
	r.last = *req
	rep.FD = 7
	rep.N = int64(len(req.Data))
	rep.Data = append(rep.Data[:0], 'x')
	return nil
}

func TestClientStampsJobContext(t *testing.T) {
	rec := &recorder{}
	c := NewClient(rec).WithJob("job-42", "alice", 1234)
	if _, err := c.Open("/pfs/f", ORdOnly, 0); err != nil {
		t.Fatal(err)
	}
	if rec.last.JobID != "job-42" || rec.last.User != "alice" || rec.last.PID != 1234 {
		t.Errorf("context not stamped: %+v", rec.last)
	}
}

func TestClientTypedCallsBuildCorrectRequests(t *testing.T) {
	rec := &recorder{}
	c := NewClient(rec)
	fd, err := c.Open("/p", ORdWr, 0o644)
	if err != nil || fd != 7 {
		t.Fatalf("Open = %d, %v", fd, err)
	}
	if rec.last.Op != OpOpen || rec.last.Flags != ORdWr {
		t.Errorf("Open request = %+v", rec.last)
	}
	if _, err := c.Write(3, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if rec.last.Op != OpWrite || rec.last.Size != 5 {
		t.Errorf("Write request = %+v", rec.last)
	}
	if err := c.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if rec.last.Op != OpRename || rec.last.NewPath != "/b" {
		t.Errorf("Rename request = %+v", rec.last)
	}
	if _, err := c.GetAttr("/a"); err != nil {
		t.Fatal(err)
	}
	if rec.last.Op != OpGetAttr {
		t.Errorf("GetAttr request op = %v", rec.last.Op)
	}
	if err := c.SetXAttr("/a", "user.k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if rec.last.Op != OpSetXAttr || rec.last.Name != "user.k" {
		t.Errorf("SetXAttr request = %+v", rec.last)
	}
}

func TestOpCostNonNegativeProperty(t *testing.T) {
	f := func(raw int16) bool {
		op := Op(int(raw) % (NumOps + 10))
		return op.MDSCost() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
