package posix

import (
	"errors"
	"fmt"
	"time"
)

// Common file-system errors shared by all backends (localfs, pfs).
var (
	ErrNotExist     = errors.New("posix: no such file or directory")
	ErrExist        = errors.New("posix: file exists")
	ErrIsDir        = errors.New("posix: is a directory")
	ErrNotDir       = errors.New("posix: not a directory")
	ErrNotEmpty     = errors.New("posix: directory not empty")
	ErrBadFD        = errors.New("posix: bad file descriptor")
	ErrInvalid      = errors.New("posix: invalid argument")
	ErrNoAttr       = errors.New("posix: no such attribute")
	ErrCrossDevice  = errors.New("posix: cross-device link")
	ErrNotSupported = errors.New("posix: operation not supported")
	ErrIO           = errors.New("posix: input/output error")
	ErrNoSpace      = errors.New("posix: no space left on device")
)

// Open flags (subset of fcntl.h relevant to the model).
const (
	ORdOnly = 0x0
	OWrOnly = 0x1
	ORdWr   = 0x2
	OCreate = 0x40
	OExcl   = 0x80
	OTrunc  = 0x200
	OAppend = 0x400
)

// FileMode carries permission bits and the directory flag.
type FileMode uint32

// ModeDir marks directories.
const ModeDir FileMode = 1 << 31

// IsDir reports whether the mode describes a directory.
func (m FileMode) IsDir() bool { return m&ModeDir != 0 }

// Perm returns the permission bits.
func (m FileMode) Perm() FileMode { return m & 0o777 }

// FileInfo is the stat payload returned by metadata operations.
type FileInfo struct {
	Name    string
	Size    int64
	Mode    FileMode
	ModTime time.Time
	Inode   uint64
	Nlink   int
	UID     int
	GID     int
}

// DirEntry is one readdir result.
type DirEntry struct {
	Name  string
	IsDir bool
	Inode uint64
}

// FSStat is the statfs payload.
type FSStat struct {
	TotalBytes int64
	FreeBytes  int64
	TotalFiles int64
	FreeFiles  int64
}

// Request is one interposed POSIX call, carrying every attribute PADLL's
// request-differentiation step classifies on (§III-A: request type,
// request class, path name, and others) plus the payload parameters the
// backend needs to execute it.
type Request struct {
	Op      Op
	Path    string // primary path (open, stat, mkdir, ...)
	NewPath string // secondary path (rename, link, symlink target)
	FD      int    // fd-based ops (read, write, close, fstat, ...)
	Offset  int64  // pread/pwrite/lseek/truncate
	Size    int64  // read/write byte count, truncate length
	Flags   int    // open flags, lseek whence
	Mode    FileMode
	Data    []byte // write payload (may be nil: size-only modelling)
	Name    string // xattr name
	Value   []byte // xattr value

	// Context attributes used for differentiation and accounting.
	JobID  string
	User   string
	PID    int
	Tenant string

	// Issued is stamped by the shim when the request is intercepted.
	Issued time.Time
}

// Reply is the result of executing a Request.
type Reply struct {
	FD      int        // open/opendir
	N       int64      // bytes read/written, new offset
	Info    FileInfo   // stat family
	Entries []DirEntry // readdir
	Data    []byte     // read payload / xattr value / readlink target
	Names   []string   // listxattr
	Stat    FSStat     // statfs
}

// String renders a request compactly for logs.
func (r *Request) String() string {
	switch {
	case r.NewPath != "":
		return fmt.Sprintf("%s(%s -> %s)", r.Op, r.Path, r.NewPath)
	case r.Path != "":
		return fmt.Sprintf("%s(%s)", r.Op, r.Path)
	default:
		return fmt.Sprintf("%s(fd=%d)", r.Op, r.FD)
	}
}

// FileSystem is the boundary every layer of the PADLL stack implements:
// concrete backends (the local file system model, the PFS client), the
// interposition shim that wraps them, and test doubles. A single generic
// entry point keeps the shim's per-call interception table trivial to
// compose while the Client type restores a typed API for applications.
type FileSystem interface {
	// Apply executes one POSIX request and returns its reply.
	Apply(req *Request) (*Reply, error)
}

// FileSystemFunc adapts a function to the FileSystem interface.
type FileSystemFunc func(req *Request) (*Reply, error)

// Apply implements FileSystem.
func (f FileSystemFunc) Apply(req *Request) (*Reply, error) { return f(req) }
