package posix

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Common file-system errors shared by all backends (localfs, pfs).
var (
	ErrNotExist     = errors.New("posix: no such file or directory")
	ErrExist        = errors.New("posix: file exists")
	ErrIsDir        = errors.New("posix: is a directory")
	ErrNotDir       = errors.New("posix: not a directory")
	ErrNotEmpty     = errors.New("posix: directory not empty")
	ErrBadFD        = errors.New("posix: bad file descriptor")
	ErrInvalid      = errors.New("posix: invalid argument")
	ErrNoAttr       = errors.New("posix: no such attribute")
	ErrCrossDevice  = errors.New("posix: cross-device link")
	ErrNotSupported = errors.New("posix: operation not supported")
	ErrIO           = errors.New("posix: input/output error")
	ErrNoSpace      = errors.New("posix: no space left on device")
)

// Open flags (subset of fcntl.h relevant to the model).
const (
	ORdOnly = 0x0
	OWrOnly = 0x1
	ORdWr   = 0x2
	OCreate = 0x40
	OExcl   = 0x80
	OTrunc  = 0x200
	OAppend = 0x400
)

// FileMode carries permission bits and the directory flag.
type FileMode uint32

// ModeDir marks directories.
const ModeDir FileMode = 1 << 31

// IsDir reports whether the mode describes a directory.
func (m FileMode) IsDir() bool { return m&ModeDir != 0 }

// Perm returns the permission bits.
func (m FileMode) Perm() FileMode { return m & 0o777 }

// FileInfo is the stat payload returned by metadata operations.
type FileInfo struct {
	Name    string
	Size    int64
	Mode    FileMode
	ModTime time.Time
	Inode   uint64
	Nlink   int
	UID     int
	GID     int
}

// DirEntry is one readdir result.
type DirEntry struct {
	Name  string
	IsDir bool
	Inode uint64
}

// FSStat is the statfs payload.
type FSStat struct {
	TotalBytes int64
	FreeBytes  int64
	TotalFiles int64
	FreeFiles  int64
}

// Request is one interposed POSIX call, carrying every attribute PADLL's
// request-differentiation step classifies on (§III-A: request type,
// request class, path name, and others) plus the payload parameters the
// backend needs to execute it.
type Request struct {
	Op      Op
	Path    string // primary path (open, stat, mkdir, ...)
	NewPath string // secondary path (rename, link, symlink target)
	FD      int    // fd-based ops (read, write, close, fstat, ...)
	Offset  int64  // pread/pwrite/lseek/truncate
	Size    int64  // read/write byte count, truncate length
	Flags   int    // open flags, lseek whence
	Mode    FileMode
	Data    []byte // write payload (may be nil: size-only modelling)
	Name    string // xattr name
	Value   []byte // xattr value

	// Context attributes used for differentiation and accounting.
	JobID  string
	User   string
	PID    int
	Tenant string

	// Issued is stamped by the shim when the request is intercepted.
	Issued time.Time
}

// Reply is the result of executing a Request.
type Reply struct {
	FD      int        // open/opendir
	N       int64      // bytes read/written, new offset
	Info    FileInfo   // stat family
	Entries []DirEntry // readdir
	Data    []byte     // read payload / xattr value / readlink target
	Names   []string   // listxattr
	Stat    FSStat     // statfs
}

// String renders a request compactly for logs.
func (r *Request) String() string {
	switch {
	case r.NewPath != "":
		return fmt.Sprintf("%s(%s -> %s)", r.Op, r.Path, r.NewPath)
	case r.Path != "":
		return fmt.Sprintf("%s(%s)", r.Op, r.Path)
	default:
		return fmt.Sprintf("%s(fd=%d)", r.Op, r.FD)
	}
}

// Package-level zero values so //lint:hotpath-annotated resets assign
// instead of building composite literals on the hot path.
var (
	zeroRequest Request
	zeroInfo    FileInfo
	zeroStat    FSStat
)

// Reset clears the request for reuse. Slices are dropped, not truncated:
// a Request never owns its payloads (Data/Value belong to the caller), so
// retaining capacity here would pin caller memory in the pool.
//
//lint:hotpath
func (r *Request) Reset() { *r = zeroRequest }

// Reset clears the reply for reuse while keeping slice capacity, so a
// pooled Reply amortizes its Entries/Data/Names backing arrays across
// requests. Callers that hand a reply slice to application code must
// detach it (nil the field) before resetting, or the next user of the
// scratch will scribble over it.
//
//lint:hotpath
func (r *Reply) Reset() {
	r.FD = 0
	r.N = 0
	r.Info = zeroInfo
	r.Stat = zeroStat
	if r.Entries != nil {
		r.Entries = r.Entries[:0]
	}
	if r.Data != nil {
		r.Data = r.Data[:0]
	}
	if r.Names != nil {
		r.Names = r.Names[:0]
	}
}

// FileSystem is the boundary every layer of the PADLL stack implements:
// concrete backends (the local file system model, the PFS client), the
// interposition shim that wraps them, and test doubles. A single generic
// entry point keeps the shim's per-call interception table trivial to
// compose while the Client type restores a typed API for applications.
//
// Ownership contract (the alloc-free lifecycle depends on it):
//
//   - The caller owns req and rep for the duration of the call; rep
//     arrives Reset (zero scalar fields, zero-length slices). The callee
//     must not retain either pointer — or any slice reachable from them —
//     past its return.
//   - The callee fills reply slices by appending into the caller's
//     scratch (rep.Entries = append(rep.Entries[:0], ...)); it must never
//     alias backend-owned memory into rep, because the caller may mutate
//     or recycle the reply as soon as Apply returns.
//   - A caller that exposes a reply slice beyond its own frame (Client
//     returning rep.Data, say) detaches it by nil-ing the field before
//     the reply goes back in a pool.
type FileSystem interface {
	// Apply executes one POSIX request into the caller-provided reply.
	Apply(req *Request, rep *Reply) error
}

// Do applies req against fs with a freshly allocated reply — the
// convenient two-value form for cold callers and tests. Hot paths use
// pooled replies through Client instead.
func Do(fs FileSystem, req *Request) (*Reply, error) {
	rep := new(Reply)
	if err := fs.Apply(req, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// FileSystemFunc adapts a function to the FileSystem interface.
type FileSystemFunc func(req *Request, rep *Reply) error

// Apply implements FileSystem.
func (f FileSystemFunc) Apply(req *Request, rep *Reply) error { return f(req, rep) }

// Request/Reply scratch pools. Interface dispatch makes every *Request
// and *Reply escape at the FileSystem boundary, so per-call stack
// allocation is off the table; pooling is the next best thing and keeps
// the steady-state request path at zero allocations. Exported so layers
// that forward rewritten copies (mount.Router) share the same scratch.
var (
	requestPool = sync.Pool{New: func() any { return new(Request) }}
	replyPool   = sync.Pool{New: func() any { return new(Reply) }}
)

// GetRequest returns a zeroed request from the scratch pool.
//
//lint:hotpath
func GetRequest() *Request { return requestPool.Get().(*Request) }

// PutRequest resets the request and returns it to the pool. The caller
// must not touch it afterwards.
//
//lint:hotpath
func PutRequest(r *Request) {
	r.Reset()
	requestPool.Put(r)
}

// GetReply returns a reply from the scratch pool, already Reset.
//
//lint:hotpath
func GetReply() *Reply { return replyPool.Get().(*Reply) }

// PutReply resets the reply (keeping slice capacity) and returns it to
// the pool. Detach any slice handed to application code first.
//
//lint:hotpath
func PutReply(r *Reply) {
	r.Reset()
	replyPool.Put(r)
}
