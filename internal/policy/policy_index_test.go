package policy

import (
	"fmt"
	"testing"

	"padll/internal/posix"
)

// indexTestRules is a mixed rule set covering every matcher dimension.
func indexTestRules() []Rule {
	return []Rule{
		{ID: "open", Match: Matcher{Ops: []posix.Op{posix.OpOpen, posix.OpOpen64, posix.OpCreat}}, Rate: 100},
		{ID: "meta", Match: Matcher{Classes: []posix.Class{posix.ClassMetadata, posix.ClassDirectory}}, Rate: 200},
		{ID: "data", Match: Matcher{Classes: []posix.Class{posix.ClassData}}, Rate: 300},
		{ID: "scratch", Match: Matcher{PathPrefix: "/pfs/scratch/"}, Rate: 400},
		{ID: "job2", Match: Matcher{JobID: "job2"}, Rate: 500},
		{ID: "bob-open", Match: Matcher{Ops: []posix.Op{posix.OpOpen}, User: "bob"}, Rate: 600},
		{ID: "all", Match: Matcher{}, Rate: Unlimited},
	}
}

// selectReference is the pre-index linear scan Select replaced.
func selectReference(rs *RuleSet, req *posix.Request) *Rule {
	rules := rs.Rules()
	for i := range rules {
		if rules[i].Match.Matches(req) {
			return &rules[i]
		}
	}
	return nil
}

// TestSelectIndexEquivalence checks the per-op dispatch index returns
// exactly what the linear specificity scan returns, over every op and a
// grid of request attributes, including after removals re-index the set.
func TestSelectIndexEquivalence(t *testing.T) {
	rs := NewRuleSet(indexTestRules()...)
	check := func() {
		t.Helper()
		for op := 0; op < posix.NumOps; op++ {
			for _, path := range []string{"/pfs/scratch/x", "/pfs/a", ""} {
				for _, job := range []string{"job1", "job2"} {
					for _, user := range []string{"alice", "bob"} {
						req := &posix.Request{Op: posix.Op(op), Path: path, JobID: job, User: user}
						got, want := rs.Select(req), selectReference(rs, req)
						gotID, wantID := "", ""
						if got != nil {
							gotID = got.ID
						}
						if want != nil {
							wantID = want.ID
						}
						if gotID != wantID {
							t.Fatalf("op=%v path=%q job=%s user=%s: indexed Select=%q, linear scan=%q",
								posix.Op(op), path, job, user, gotID, wantID)
						}
					}
				}
			}
		}
	}
	check()
	rs.Remove("all")
	rs.Remove("meta")
	check()
	rs.Upsert(Rule{ID: "meta", Match: Matcher{Classes: []posix.Class{posix.ClassMetadata}}, Rate: 50})
	check()
}

// TestSelectInvalidOpFallsBack ensures requests with out-of-range ops
// still classify via the linear path instead of indexing out of bounds.
func TestSelectInvalidOpFallsBack(t *testing.T) {
	rs := NewRuleSet(Rule{ID: "all", Match: Matcher{JobID: "job1"}, Rate: 1})
	req := &posix.Request{Op: posix.Op(9999), JobID: "job1"}
	r := rs.Select(req)
	if r == nil || r.ID != "all" {
		t.Fatalf("Select with invalid op = %v, want rule \"all\"", r)
	}
}

// TestCouldMatchOp pins the index predicate against Matches: for every
// op, a rule excluded by CouldMatchOp must never match a request with
// that op, whatever the other attributes.
func TestCouldMatchOp(t *testing.T) {
	for _, r := range indexTestRules() {
		for op := 0; op < posix.NumOps; op++ {
			m := r.Match
			if m.CouldMatchOp(posix.Op(op)) {
				continue
			}
			req := &posix.Request{Op: posix.Op(op), Path: "/pfs/scratch/x", JobID: "job2", User: "bob"}
			if m.Matches(req) {
				t.Fatalf("rule %s: CouldMatchOp(%v) = false but Matches succeeded", r.ID, posix.Op(op))
			}
		}
	}
}

// TestOpDecides pins the hot path's Matches-skip: when OpDecides is true,
// op candidacy must imply a full match for any path/job/user.
func TestOpDecides(t *testing.T) {
	for _, r := range indexTestRules() {
		m := r.Match
		if !m.OpDecides() {
			continue
		}
		for op := 0; op < posix.NumOps; op++ {
			if !m.CouldMatchOp(posix.Op(op)) {
				continue
			}
			req := &posix.Request{Op: posix.Op(op), Path: "/x", JobID: "j", User: "u"}
			if !m.Matches(req) {
				t.Fatalf("rule %s: OpDecides && CouldMatchOp(%v) but Matches failed", r.ID, posix.Op(op))
			}
		}
	}
}

// TestMatcherPrefixCompile checks the precompiled trailing-slash prefix
// agrees with the uncompiled fallback, including the corner cases the
// TrimSuffix normalization covers.
func TestMatcherPrefixCompile(t *testing.T) {
	cases := []struct {
		prefix string
		path   string
		want   bool
	}{
		{"/pfs/scratch", "/pfs/scratch", true},
		{"/pfs/scratch", "/pfs/scratch/x", true},
		{"/pfs/scratch", "/pfs/scratchy", false},
		{"/pfs/scratch/", "/pfs/scratch/x", true},
		{"/pfs/scratch/", "/pfs/scratchy", false},
		{"/pfs/scratch/", "/pfs/scratch/", true},
	}
	for _, c := range cases {
		uncompiled := Matcher{PathPrefix: c.prefix}
		compiled := Matcher{PathPrefix: c.prefix}
		compiled.compile()
		req := &posix.Request{Op: posix.OpOpen, Path: c.path}
		if got := uncompiled.Matches(req); got != c.want {
			t.Errorf("uncompiled %q vs %q = %v, want %v", c.prefix, c.path, got, c.want)
		}
		if got := compiled.Matches(req); got != c.want {
			t.Errorf("compiled %q vs %q = %v, want %v", c.prefix, c.path, got, c.want)
		}
	}
}

func BenchmarkSelectIndexed(b *testing.B) {
	rs := NewRuleSet(indexTestRules()...)
	req := &posix.Request{Op: posix.OpGetAttr, Path: "/pfs/a", JobID: "job1", User: "alice"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rs.Select(req) == nil {
			b.Fatal("no match")
		}
	}
}

func BenchmarkSelectLinear(b *testing.B) {
	rs := NewRuleSet(indexTestRules()...)
	req := &posix.Request{Op: posix.OpGetAttr, Path: "/pfs/a", JobID: "job1", User: "alice"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if selectReference(rs, req) == nil {
			b.Fatal("no match")
		}
	}
}

func ExampleRuleSet_Select() {
	rs := NewRuleSet(
		Rule{ID: "open", Match: Matcher{Ops: []posix.Op{posix.OpOpen}}, Rate: 100},
		Rule{ID: "meta", Match: Matcher{Classes: []posix.Class{posix.ClassMetadata}}, Rate: 200},
	)
	r := rs.Select(&posix.Request{Op: posix.OpOpen, Path: "/pfs/f"})
	fmt.Println(r.ID)
	// Output: open
}
