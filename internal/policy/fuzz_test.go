package policy

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"padll/internal/posix"
)

// FuzzMatcher drives the rule DSL end to end: Parse on arbitrary input
// must never panic, and any rule it accepts must (a) satisfy the
// invariants the data plane relies on — finite non-negative rates and
// bursts, a usable EffectiveBurst — and (b) survive a String/Parse
// round-trip with its matching semantics intact. The matcher half feeds
// the parsed rule through RuleSet.Select with an arbitrary request and
// cross-checks the per-op dispatch index against a plain Matches scan.
func FuzzMatcher(f *testing.F) {
	seeds := []string{
		"limit id:open-cap job:job1 op:open rate:10k burst:500",
		"limit id:meta class:metadata rate:75k",
		"limit id:pass path:/tmp rate:unlimited",
		"limit id:drop user:alice op:rename rate:1.5m action:drop",
		"limit id:all all rate:0 burst:1",
		"limit id:frac rate:2.5 burst:0.5",
		"limit id:bad rate:NaN",
		"limit id:bad rate:Inf burst:Infinity",
		"limit id:bad rate:1e308m",
		"limit", "", "limit all", "limit id: rate:1", "nonsense id:x rate:1",
	}
	for _, s := range seeds {
		f.Add(s, byte(0), "/pfs/a", "job1", "alice")
	}
	f.Fuzz(func(t *testing.T, line string, opByte byte, path, job, user string) {
		r, err := Parse(line)
		if err != nil {
			return
		}

		// Invariants on every accepted rule.
		if r.ID == "" {
			t.Fatalf("Parse(%q) accepted a rule with empty id", line)
		}
		if r.Rate != Unlimited && (r.Rate < 0 || math.IsNaN(r.Rate) || math.IsInf(r.Rate, 0)) {
			t.Fatalf("Parse(%q) accepted non-finite/negative rate %v", line, r.Rate)
		}
		if r.Burst < 0 || math.IsNaN(r.Burst) || math.IsInf(r.Burst, 0) {
			t.Fatalf("Parse(%q) accepted bad burst %v", line, r.Burst)
		}
		if eb := r.EffectiveBurst(); eb <= 0 || math.IsNaN(eb) || math.IsInf(eb, 0) {
			t.Fatalf("Parse(%q): EffectiveBurst = %v", line, eb)
		}

		// String must render a form Parse accepts again, preserving the
		// rule's meaning (rates compared with tolerance: formatRate's
		// k/m suffixes multiply back through a float).
		rendered := r.String()
		r2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q).String() = %q does not re-parse: %v", line, rendered, err)
		}
		if r2.ID != r.ID || r2.Action != r.Action {
			t.Fatalf("round-trip changed id/action: %+v -> %+v (via %q)", r, r2, rendered)
		}
		if !matcherEqual(r.Match, r2.Match) {
			t.Fatalf("round-trip changed matcher: %#v -> %#v (via %q)", r.Match, r2.Match, rendered)
		}
		if !closeEnough(r.Rate, r2.Rate) {
			t.Fatalf("round-trip changed rate: %v -> %v (via %q)", r.Rate, r2.Rate, rendered)
		}
		if !closeEnough(r.EffectiveBurst(), r2.EffectiveBurst()) {
			t.Fatalf("round-trip changed burst: %v -> %v (via %q)",
				r.EffectiveBurst(), r2.EffectiveBurst(), rendered)
		}

		// Selection: the per-op index must agree with a direct scan.
		req := &posix.Request{
			Op:    posix.Op(int(opByte) % posix.NumOps),
			Path:  path,
			JobID: job,
			User:  user,
		}
		rs := NewRuleSet(r)
		got := rs.Select(req)
		want := r.Match.Matches(req)
		if (got != nil) != want {
			t.Fatalf("Select disagrees with Matches for rule %q on %+v: select=%v matches=%v",
				rendered, req, got != nil, want)
		}
		if got != nil && !strings.Contains(rendered, "id:"+got.ID) {
			t.Fatalf("Select returned foreign rule %q for %q", got.ID, rendered)
		}
	})
}

func matcherEqual(a, b Matcher) bool {
	return reflect.DeepEqual(a.Ops, b.Ops) &&
		reflect.DeepEqual(a.Classes, b.Classes) &&
		a.PathPrefix == b.PathPrefix && a.JobID == b.JobID && a.User == b.User
}

// closeEnough compares rates that may have passed through formatRate's
// k/m suffix (one float multiply each way).
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}
