package policy

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"padll/internal/posix"
)

func req(op posix.Op, path, job, user string) *posix.Request {
	return &posix.Request{Op: op, Path: path, JobID: job, User: user}
}

func TestEmptyMatcherMatchesEverything(t *testing.T) {
	m := &Matcher{}
	for _, op := range posix.AllOps() {
		if !m.Matches(req(op, "/any", "j", "u")) {
			t.Errorf("wildcard matcher rejected %v", op)
		}
	}
}

func TestMatcherByOp(t *testing.T) {
	m := &Matcher{Ops: []posix.Op{posix.OpOpen, posix.OpClose}}
	if !m.Matches(req(posix.OpOpen, "", "", "")) || !m.Matches(req(posix.OpClose, "", "", "")) {
		t.Error("op matcher rejected listed op")
	}
	if m.Matches(req(posix.OpRead, "", "", "")) {
		t.Error("op matcher accepted unlisted op")
	}
}

func TestMatcherByClass(t *testing.T) {
	m := &Matcher{Classes: []posix.Class{posix.ClassMetadata}}
	if !m.Matches(req(posix.OpGetAttr, "", "", "")) {
		t.Error("class matcher rejected getattr")
	}
	if m.Matches(req(posix.OpRead, "", "", "")) {
		t.Error("class matcher accepted data op")
	}
}

func TestMatcherByPathPrefix(t *testing.T) {
	m := &Matcher{PathPrefix: "/scratch/foo"}
	if !m.Matches(req(posix.OpOpen, "/scratch/foo/f", "", "")) {
		t.Error("rejected path under prefix")
	}
	if !m.Matches(req(posix.OpOpen, "/scratch/foo", "", "")) {
		t.Error("rejected exact prefix path")
	}
	if m.Matches(req(posix.OpOpen, "/scratch/foobar", "", "")) {
		t.Error("matched non-boundary prefix")
	}
	if m.Matches(req(posix.OpOpen, "/other", "", "")) {
		t.Error("matched unrelated path")
	}
}

func TestMatcherByJobAndUser(t *testing.T) {
	m := &Matcher{JobID: "job1", User: "alice"}
	if !m.Matches(req(posix.OpOpen, "", "job1", "alice")) {
		t.Error("rejected matching job+user")
	}
	if m.Matches(req(posix.OpOpen, "", "job2", "alice")) {
		t.Error("accepted wrong job")
	}
	if m.Matches(req(posix.OpOpen, "", "job1", "bob")) {
		t.Error("accepted wrong user")
	}
}

func TestMatcherConjunction(t *testing.T) {
	m := &Matcher{Ops: []posix.Op{posix.OpOpen}, JobID: "j1", PathPrefix: "/pfs"}
	if !m.Matches(req(posix.OpOpen, "/pfs/x", "j1", "")) {
		t.Error("rejected fully matching request")
	}
	if m.Matches(req(posix.OpOpen, "/pfs/x", "j2", "")) {
		t.Error("conjunction ignored job constraint")
	}
	if m.Matches(req(posix.OpClose, "/pfs/x", "j1", "")) {
		t.Error("conjunction ignored op constraint")
	}
}

func TestSpecificityOrdering(t *testing.T) {
	opRule := Matcher{Ops: []posix.Op{posix.OpOpen}}
	classRule := Matcher{Classes: []posix.Class{posix.ClassMetadata}}
	allRule := Matcher{}
	if !(opRule.Specificity() > classRule.Specificity()) {
		t.Error("op constraint must be more specific than class constraint")
	}
	if !(classRule.Specificity() > allRule.Specificity()) {
		t.Error("class constraint must be more specific than wildcard")
	}
}

func TestRuleSetSelectsMostSpecific(t *testing.T) {
	rs := NewRuleSet(
		Rule{ID: "all", Match: Matcher{}, Rate: 1000},
		Rule{ID: "meta", Match: Matcher{Classes: []posix.Class{posix.ClassMetadata}}, Rate: 500},
		Rule{ID: "open", Match: Matcher{Ops: []posix.Op{posix.OpOpen}}, Rate: 100},
	)
	if r := rs.Select(req(posix.OpOpen, "", "", "")); r == nil || r.ID != "open" {
		t.Errorf("open selected %v, want open rule", r)
	}
	if r := rs.Select(req(posix.OpGetAttr, "", "", "")); r == nil || r.ID != "meta" {
		t.Errorf("getattr selected %v, want meta rule", r)
	}
	if r := rs.Select(req(posix.OpRead, "", "", "")); r == nil || r.ID != "all" {
		t.Errorf("read selected %v, want all rule", r)
	}
}

func TestRuleSetSelectNoMatch(t *testing.T) {
	rs := NewRuleSet(Rule{ID: "j1", Match: Matcher{JobID: "job1"}, Rate: 10})
	if r := rs.Select(req(posix.OpOpen, "", "job2", "")); r != nil {
		t.Errorf("selected %v for non-matching request", r)
	}
}

func TestRuleSetUpsertReplaces(t *testing.T) {
	rs := NewRuleSet(Rule{ID: "a", Rate: 10})
	rs.Upsert(Rule{ID: "a", Rate: 99})
	if rs.Len() != 1 {
		t.Fatalf("Len = %d, want 1", rs.Len())
	}
	if got := rs.Rules()[0].Rate; got != 99 {
		t.Errorf("rate after upsert = %v, want 99", got)
	}
}

func TestRuleSetRemove(t *testing.T) {
	rs := NewRuleSet(Rule{ID: "a", Rate: 10}, Rule{ID: "b", Rate: 20})
	if !rs.Remove("a") {
		t.Error("Remove returned false for existing rule")
	}
	if rs.Remove("a") {
		t.Error("Remove returned true for missing rule")
	}
	if rs.Len() != 1 {
		t.Errorf("Len = %d, want 1", rs.Len())
	}
}

func TestEffectiveBurstDefaults(t *testing.T) {
	cases := []struct {
		rule Rule
		want float64
	}{
		{Rule{Rate: 1000}, 100},
		{Rule{Rate: 1000, Burst: 5}, 5},
		{Rule{Rate: 2}, 1},
		{Rule{Rate: Unlimited}, 1},
	}
	for _, c := range cases {
		if got := c.rule.EffectiveBurst(); got != c.want {
			t.Errorf("EffectiveBurst(%+v) = %v, want %v", c.rule, got, c.want)
		}
	}
}

func TestParseBasicRule(t *testing.T) {
	r, err := Parse("limit id:open-cap job:job1 op:open rate:10k burst:500")
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "open-cap" || r.Match.JobID != "job1" || r.Rate != 10000 || r.Burst != 500 {
		t.Errorf("parsed = %+v", r)
	}
	if len(r.Match.Ops) != 1 || r.Match.Ops[0] != posix.OpOpen {
		t.Errorf("ops = %v", r.Match.Ops)
	}
}

func TestParseClassAndPath(t *testing.T) {
	r, err := Parse("limit id:m class:metadata path:/scratch/foo rate:75k")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rate != 75000 || r.Match.PathPrefix != "/scratch/foo" {
		t.Errorf("parsed = %+v", r)
	}
	if len(r.Match.Classes) != 1 || r.Match.Classes[0] != posix.ClassMetadata {
		t.Errorf("classes = %v", r.Match.Classes)
	}
}

func TestParseUnlimited(t *testing.T) {
	r, err := Parse("limit id:pass path:/tmp rate:unlimited")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rate != Unlimited {
		t.Errorf("rate = %v, want Unlimited", r.Rate)
	}
}

func TestParseMillionSuffixAndFloat(t *testing.T) {
	r, err := Parse("limit id:x rate:1.5m")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rate != 1.5e6 {
		t.Errorf("rate = %v, want 1.5e6", r.Rate)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"throttle id:x rate:5", // wrong verb
		"limit rate:5",         // missing id
		"limit id:x",           // missing rate
		"limit id:x rate:fast", // bad rate
		"limit id:x rate:-5",   // negative rate
		"limit id:x op:bogus rate:5",
		"limit id:x class:bogus rate:5",
		"limit id:x rate:5 burst:-2",
		"limit id:x frob:1 rate:5", // unknown key
		"limit id:x token rate:5",  // malformed token
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted invalid rule", s)
		}
	}
}

func TestParseAllWithCommentsAndBlanks(t *testing.T) {
	text := `
# cluster policy
limit id:meta class:metadata rate:300k

limit id:open op:open rate:50k
`
	rules, err := ParseAll(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(rules))
	}
}

func TestParseAllReportsLine(t *testing.T) {
	_, err := ParseAll("limit id:a rate:5\nlimit broken\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line 2 mention", err)
	}
}

func TestRuleStringRoundTrip(t *testing.T) {
	orig, err := Parse("limit id:open-cap job:job1 op:open rate:10k burst:500")
	if err != nil {
		t.Fatal(err)
	}
	re, err := Parse(orig.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", orig.String(), err)
	}
	if re.ID != orig.ID || re.Rate != orig.Rate || re.Match.JobID != orig.Match.JobID {
		t.Errorf("round trip: %+v vs %+v", orig, re)
	}
}

func TestMatcherStringForms(t *testing.T) {
	if got := (&Matcher{}).String(); got != "all" {
		t.Errorf("wildcard String = %q", got)
	}
	m := &Matcher{Ops: []posix.Op{posix.OpOpen}, JobID: "j"}
	if got := m.String(); got != "op:open job:j" {
		t.Errorf("String = %q", got)
	}
}

// Property: Select always returns a rule whose matcher matches, and no
// unmatched rule is more specific than the selected one.
func TestSelectSpecificityProperty(t *testing.T) {
	rs := NewRuleSet(
		Rule{ID: "all", Rate: 1},
		Rule{ID: "meta", Match: Matcher{Classes: []posix.Class{posix.ClassMetadata}}, Rate: 2},
		Rule{ID: "open-j1", Match: Matcher{Ops: []posix.Op{posix.OpOpen}, JobID: "j1"}, Rate: 3},
		Rule{ID: "j1", Match: Matcher{JobID: "j1"}, Rate: 4},
	)
	f := func(opRaw uint8, jobRaw bool) bool {
		op := posix.Op(int(opRaw) % posix.NumOps)
		job := "j2"
		if jobRaw {
			job = "j1"
		}
		r := req(op, "/p", job, "")
		sel := rs.Select(r)
		if sel == nil {
			return false // the "all" rule matches everything
		}
		if !sel.Match.Matches(r) {
			return false
		}
		for _, other := range rs.Rules() {
			if other.Match.Matches(r) && other.Match.Specificity() > sel.Match.Specificity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseAction(t *testing.T) {
	r, err := Parse("limit id:p op:open rate:100 action:drop")
	if err != nil {
		t.Fatal(err)
	}
	if r.Action != ActionDrop {
		t.Errorf("action = %v, want drop", r.Action)
	}
	if _, err := Parse("limit id:p rate:1 action:teleport"); err == nil {
		t.Error("unknown action accepted")
	}
	// Default is shape, and shape parses explicitly too.
	r, err = Parse("limit id:p rate:1 action:shape")
	if err != nil || r.Action != ActionShape {
		t.Errorf("shape parse = %+v, %v", r, err)
	}
}

func TestRuleStringIncludesDropAction(t *testing.T) {
	r := Rule{ID: "p", Rate: 100, Action: ActionDrop}
	re, err := Parse(r.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", r.String(), err)
	}
	if re.Action != ActionDrop {
		t.Errorf("action lost in round trip: %q", r.String())
	}
}

// Property: any rule assembled from valid components survives a
// String -> Parse round trip with identical semantics.
func TestRuleRoundTripProperty(t *testing.T) {
	f := func(opRaw, classRaw uint8, rateRaw uint32, burstRaw uint16, drop bool, jobSeed uint8) bool {
		r := Rule{
			ID:    fmt.Sprintf("r%d", jobSeed),
			Rate:  float64(rateRaw%1_000_000) + 1,
			Burst: float64(burstRaw%1000) + 1,
		}
		if drop {
			r.Action = ActionDrop
		}
		if opRaw%3 == 0 {
			r.Match.Ops = []posix.Op{posix.Op(int(opRaw) % posix.NumOps)}
		}
		if classRaw%3 == 0 {
			r.Match.Classes = []posix.Class{posix.Class(int(classRaw) % posix.NumClasses)}
		}
		if jobSeed%2 == 0 {
			r.Match.JobID = fmt.Sprintf("job%d", jobSeed)
		}
		re, err := Parse(r.String())
		if err != nil {
			return false
		}
		if re.ID != r.ID || re.Burst != r.Burst || re.Action != r.Action {
			return false
		}
		// Rates may lose precision through the k/m formatter only for
		// values it renders exactly; formatRate falls back to %g, which
		// round-trips float64 exactly.
		if re.Rate != r.Rate {
			return false
		}
		if len(re.Match.Ops) != len(r.Match.Ops) || len(re.Match.Classes) != len(r.Match.Classes) {
			return false
		}
		return re.Match.JobID == r.Match.JobID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
