// Package policy defines PADLL's rule model: the vocabulary system
// administrators use to express QoS intents on the control plane, and the
// matching machinery data-plane stages use to classify intercepted
// requests into enforcement queues (§III-A request differentiation,
// §III-B simple policies).
//
// A Rule pairs a Matcher — a conjunction of request attributes (operation
// type, operation class, path prefix, job, user) — with an enforcement
// target (rate and burst). Rules are ordered by specificity, so "throttle
// open calls of job1" beats "throttle all metadata of job1" beats
// "throttle everything".
package policy

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"padll/internal/posix"
)

// Unlimited as a rule rate means "do not throttle" (passthrough).
const Unlimited float64 = -1

// Matcher is a conjunction of request attributes; zero-valued fields are
// wildcards. A Matcher with no constraints matches every request.
type Matcher struct {
	// Ops restricts matching to specific operation types.
	Ops []posix.Op
	// Classes restricts matching to operation classes.
	Classes []posix.Class
	// PathPrefix restricts matching to paths under a prefix.
	PathPrefix string
	// JobID restricts matching to a single job.
	JobID string
	// User restricts matching to a single user.
	User string

	// prefixSlash caches PathPrefix with exactly one trailing slash for
	// the hot-path prefix test. It is computed by compile() when a rule
	// enters a RuleSet; matchers built by hand fall back to computing it
	// per call. Unexported, so it never travels over the wire.
	//lint:allow wirecheck derived cache, deliberately not on the wire; compile() rebuilds it on the receiving side
	prefixSlash string
}

// compile precomputes derived matcher state (the slash-terminated path
// prefix) so the per-request path allocates nothing.
func (m *Matcher) compile() {
	if m.PathPrefix != "" {
		m.prefixSlash = strings.TrimSuffix(m.PathPrefix, "/") + "/"
	} else {
		m.prefixSlash = ""
	}
}

// Matches reports whether the request satisfies every constraint.
func (m *Matcher) Matches(req *posix.Request) bool {
	if m.JobID != "" && req.JobID != m.JobID {
		return false
	}
	if m.User != "" && req.User != m.User {
		return false
	}
	if m.PathPrefix != "" {
		ps := m.prefixSlash
		if ps == "" {
			//lint:allow hotpathcheck fallback for hand-built matchers only; compiled rules hit the cached prefixSlash above
			ps = strings.TrimSuffix(m.PathPrefix, "/") + "/"
		}
		if req.Path != m.PathPrefix && !strings.HasPrefix(req.Path, ps) {
			return false
		}
	}
	if len(m.Ops) > 0 {
		found := false
		for _, op := range m.Ops {
			if req.Op == op {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if len(m.Classes) > 0 {
		found := false
		for _, cl := range m.Classes {
			if req.Op.Class() == cl {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// SplitsDir reports whether the matcher can distinguish two request
// paths that share the directory prefix dir (dir must include its
// trailing slash). Matches tests paths in two arms: the slash-terminated
// prefix test, whose outcome is a function of dir alone, and the exact
// equality test, which depends on the leaf precisely when PathPrefix
// itself names an entry directly inside dir (no further slash after the
// dir prefix). Classification caches keyed by (attributes, dir) must
// refuse to memoize a directory any candidate rule splits.
func (m *Matcher) SplitsDir(dir string) bool {
	if m.PathPrefix == "" {
		return false
	}
	return strings.HasPrefix(m.PathPrefix, dir) &&
		!strings.ContainsRune(m.PathPrefix[len(dir):], '/')
}

// CouldMatchOp reports whether a request carrying op can possibly satisfy
// the matcher's op/class constraints. It evaluates only the attributes
// known from the operation type, so it can be decided per-op ahead of
// time — the basis of RuleSet's per-op dispatch index.
func (m *Matcher) CouldMatchOp(op posix.Op) bool {
	if len(m.Ops) > 0 {
		found := false
		for _, o := range m.Ops {
			if o == op {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if len(m.Classes) > 0 {
		cl := op.Class()
		found := false
		for _, c := range m.Classes {
			if c == cl {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// OpDecides reports whether op/class candidacy alone implies a full
// match: a matcher with no path, job or user constraint accepts every
// request whose operation passes CouldMatchOp. Hot paths use this to
// skip Matches entirely for per-op index candidates.
func (m *Matcher) OpDecides() bool {
	return m.PathPrefix == "" && m.JobID == "" && m.User == ""
}

// Specificity scores how narrow the matcher is; higher wins when several
// rules match one request. Operation-type constraints are narrower than
// class constraints; job/user/path constraints add on top.
func (m *Matcher) Specificity() int {
	s := 0
	if len(m.Ops) > 0 {
		s += 8
	}
	if len(m.Classes) > 0 {
		s += 4
	}
	if m.PathPrefix != "" {
		s += 2 + len(m.PathPrefix)
	}
	if m.JobID != "" {
		s += 2
	}
	if m.User != "" {
		s += 1
	}
	return s
}

// String renders the matcher in rule-DSL form.
func (m *Matcher) String() string {
	var parts []string
	for _, op := range m.Ops {
		parts = append(parts, "op:"+op.String())
	}
	for _, cl := range m.Classes {
		parts = append(parts, "class:"+cl.String())
	}
	if m.PathPrefix != "" {
		parts = append(parts, "path:"+m.PathPrefix)
	}
	if m.JobID != "" {
		parts = append(parts, "job:"+m.JobID)
	}
	if m.User != "" {
		parts = append(parts, "user:"+m.User)
	}
	if len(parts) == 0 {
		return "all"
	}
	return strings.Join(parts, " ")
}

// Action selects the enforcement mechanism applied when a queue's bucket
// runs dry. The prototype's data plane is built on PAIO-style pluggable
// mechanisms; shaping is the paper's default, policing is the classic
// alternative for callers that prefer fast failure over queueing delay.
type Action int

const (
	// ActionShape blocks the request until tokens are available
	// (traffic shaping — the paper's behaviour).
	ActionShape Action = iota
	// ActionDrop rejects the request immediately with ErrRateLimited
	// when no token is available (traffic policing).
	ActionDrop
)

// String returns the DSL token for the action.
func (a Action) String() string {
	if a == ActionDrop {
		return "drop"
	}
	return "shape"
}

// Rule is one enforcement directive: requests matching Match are served
// from a queue whose token bucket refills at Rate with the given Burst.
type Rule struct {
	// ID names the rule (and its stage queue) uniquely.
	ID string
	// Match selects the requests this rule governs.
	Match Matcher
	// Rate is the queue's token refill rate in requests/second;
	// Unlimited means passthrough.
	Rate float64
	// Burst is the token bucket capacity; when zero a burst of
	// max(1, Rate/10) is applied at enforcement time.
	Burst float64
	// Action is the enforcement mechanism (shape by default).
	Action Action
}

// EffectiveBurst resolves the default burst sizing.
func (r *Rule) EffectiveBurst() float64 {
	if r.Burst > 0 {
		return r.Burst
	}
	if r.Rate <= 0 {
		return 1
	}
	b := r.Rate / 10
	if b < 1 {
		b = 1
	}
	return b
}

// String renders the rule in DSL form.
func (r *Rule) String() string {
	rate := "rate:unlimited"
	if r.Rate >= 0 {
		rate = fmt.Sprintf("rate:%s", formatRate(r.Rate))
	}
	s := fmt.Sprintf("limit id:%s %s %s burst:%s", r.ID, r.Match.String(), rate,
		strconv.FormatFloat(r.EffectiveBurst(), 'g', -1, 64))
	if r.Action == ActionDrop {
		s += " action:drop"
	}
	return s
}

// RuleSet is an ordered set of rules with specificity-based selection.
//
// Alongside the specificity-ordered slice it maintains a per-operation
// dispatch index: for each posix.Op, the indices (in selection order) of
// the rules whose op/class constraints that operation can satisfy.
// Select walks only those candidates, so the common case — a handful of
// class-scoped rules — tests one or two matchers instead of scanning the
// whole set. The index is rebuilt on every Upsert/Remove (control-plane
// cold path).
type RuleSet struct {
	rules []Rule
	// perOp[op] lists indices into rules, selection-ordered. nil until
	// the first mutation builds it.
	perOp [][]int
}

// NewRuleSet returns a set holding the given rules.
func NewRuleSet(rules ...Rule) *RuleSet {
	rs := &RuleSet{}
	for _, r := range rules {
		rs.Upsert(r)
	}
	return rs
}

// Upsert inserts the rule, replacing any rule with the same ID.
func (rs *RuleSet) Upsert(r Rule) {
	r.Match.compile()
	for i := range rs.rules {
		if rs.rules[i].ID == r.ID {
			rs.rules[i] = r
			rs.sortLocked()
			rs.reindex()
			return
		}
	}
	rs.rules = append(rs.rules, r)
	rs.sortLocked()
	rs.reindex()
}

// Remove deletes the rule with the given ID, reporting whether it existed.
func (rs *RuleSet) Remove(id string) bool {
	for i := range rs.rules {
		if rs.rules[i].ID == id {
			rs.rules = append(rs.rules[:i], rs.rules[i+1:]...)
			rs.reindex()
			return true
		}
	}
	return false
}

// reindex rebuilds the per-op dispatch index from the current rule order.
func (rs *RuleSet) reindex() {
	perOp := make([][]int, posix.NumOps)
	for op := 0; op < posix.NumOps; op++ {
		for i := range rs.rules {
			if rs.rules[i].Match.CouldMatchOp(posix.Op(op)) {
				perOp[op] = append(perOp[op], i)
			}
		}
	}
	rs.perOp = perOp
}

// sortLocked orders rules by descending specificity (stable on ID for
// determinism).
func (rs *RuleSet) sortLocked() {
	sort.SliceStable(rs.rules, func(i, j int) bool {
		si, sj := rs.rules[i].Match.Specificity(), rs.rules[j].Match.Specificity()
		if si != sj {
			return si > sj
		}
		return rs.rules[i].ID < rs.rules[j].ID
	})
}

// Select returns the most specific rule matching the request, or nil.
func (rs *RuleSet) Select(req *posix.Request) *Rule {
	if rs.perOp != nil && req.Op.Valid() {
		for _, i := range rs.perOp[req.Op] {
			if rs.rules[i].Match.Matches(req) {
				return &rs.rules[i]
			}
		}
		return nil
	}
	for i := range rs.rules {
		if rs.rules[i].Match.Matches(req) {
			return &rs.rules[i]
		}
	}
	return nil
}

// Rules returns the rules in selection order.
func (rs *RuleSet) Rules() []Rule {
	return append([]Rule(nil), rs.rules...)
}

// Len returns the number of rules.
func (rs *RuleSet) Len() int { return len(rs.rules) }

// ---- rule DSL ----

// Parse parses one rule from DSL form:
//
//	limit id:open-cap job:job1 op:open rate:10k burst:500
//	limit id:meta class:metadata rate:75k
//	limit id:pass path:/tmp rate:unlimited
//
// Rates accept k/m suffixes (decimal thousands/millions).
func Parse(s string) (Rule, error) {
	fields := strings.Fields(strings.TrimSpace(s))
	if len(fields) == 0 || fields[0] != "limit" {
		return Rule{}, fmt.Errorf("policy: rule must start with \"limit\": %q", s)
	}
	r := Rule{Rate: Unlimited}
	seenRate := false
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, ":")
		if !ok {
			if f == "all" {
				continue
			}
			return Rule{}, fmt.Errorf("policy: malformed token %q", f)
		}
		switch key {
		case "id":
			r.ID = val
		case "op":
			op, err := posix.ParseOp(val)
			if err != nil {
				return Rule{}, err
			}
			r.Match.Ops = append(r.Match.Ops, op)
		case "class":
			cl, err := posix.ParseClass(val)
			if err != nil {
				return Rule{}, err
			}
			r.Match.Classes = append(r.Match.Classes, cl)
		case "path":
			r.Match.PathPrefix = val
		case "job":
			r.Match.JobID = val
		case "user":
			r.Match.User = val
		case "rate":
			rate, err := parseRate(val)
			if err != nil {
				return Rule{}, err
			}
			r.Rate = rate
			seenRate = true
		case "burst":
			b, err := strconv.ParseFloat(val, 64)
			if err != nil || b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
				return Rule{}, fmt.Errorf("policy: bad burst %q", val)
			}
			r.Burst = b
		case "action":
			switch val {
			case "shape":
				r.Action = ActionShape
			case "drop":
				r.Action = ActionDrop
			default:
				return Rule{}, fmt.Errorf("policy: unknown action %q", val)
			}
		default:
			return Rule{}, fmt.Errorf("policy: unknown key %q", key)
		}
	}
	if r.ID == "" {
		return Rule{}, fmt.Errorf("policy: rule needs id: %q", s)
	}
	if !seenRate {
		return Rule{}, fmt.Errorf("policy: rule needs rate: %q", s)
	}
	return r, nil
}

// ParseAll parses a newline-separated rule list, skipping blank lines and
// '#' comments.
func ParseAll(text string) ([]Rule, error) {
	var rules []Rule
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := Parse(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

func parseRate(s string) (float64, error) {
	if s == "unlimited" || s == "inf" {
		return Unlimited, nil
	}
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult, s = 1e3, s[:len(s)-1]
	case strings.HasSuffix(s, "m"), strings.HasSuffix(s, "M"):
		mult, s = 1e6, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	// ParseFloat accepts "NaN" and "Inf" spellings; both comparisons
	// below are false for NaN, so reject non-finite values explicitly —
	// a NaN rate would poison every token-bucket comparison downstream.
	if err != nil || v < 0 || math.IsNaN(v) || math.IsInf(v*mult, 0) {
		return 0, fmt.Errorf("policy: bad rate %q", s)
	}
	return v * mult, nil
}

func formatRate(v float64) string {
	switch {
	case v >= 1e6 && v == float64(int64(v/1e6))*1e6:
		return fmt.Sprintf("%gm", v/1e6)
	case v >= 1e3 && v == float64(int64(v/1e3))*1e3:
		return fmt.Sprintf("%gk", v/1e3)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}
