// Package sched implements a batch job scheduler substrate: the cluster
// component that, in the paper's deployment story, launches application
// instances on compute nodes — at which point each instance's PADLL
// stage starts and registers with the control plane, carrying the
// scheduler's job-ID so the controller can orchestrate all stages of the
// same job as one entity (§III-B).
//
// The scheduler is deliberately conventional: a fixed node pool, a FIFO
// queue with EASY-style backfill (a job that fits in the idle nodes may
// jump ahead as long as it cannot delay the queue head's earliest start),
// and job lifecycle hooks. It runs against a clock.Clock, so it composes
// with both the real clock and the simulator.
package sched

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"padll/internal/clock"
)

// State is a job's lifecycle state.
type State int

// Job lifecycle states.
const (
	// Pending jobs wait in the queue.
	Pending State = iota
	// Running jobs hold nodes.
	Running
	// Completed jobs finished (or were cancelled).
	Completed
)

var stateNames = [...]string{"pending", "running", "completed"}

// String returns the state name.
func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("State(%d)", int(s))
	}
	return stateNames[s]
}

// Spec describes a job submission.
type Spec struct {
	// ID names the job; generated when empty.
	ID string
	// User submits the job.
	User string
	// Nodes is the node count requested (default 1).
	Nodes int
	// Walltime is the requested runtime limit; the scheduler ends the
	// job when it expires (0 = no limit, ends only via Finish).
	Walltime time.Duration
}

// Job is a scheduled job's record.
type Job struct {
	Spec
	// State is the current lifecycle state.
	State State
	// SubmitTime, StartTime and EndTime trace the lifecycle.
	SubmitTime time.Time
	StartTime  time.Time
	EndTime    time.Time
	// AssignedNodes lists the node names held while Running.
	AssignedNodes []string
}

// Hooks receive lifecycle transitions. StartFn is where a PADLL
// deployment spawns one data-plane stage per assigned node and registers
// it; EndFn deregisters them.
type Hooks struct {
	// Start fires when a job begins running (after node assignment).
	Start func(j *Job)
	// End fires when a job completes (finished, walltime, or cancelled).
	End func(j *Job)
}

// ErrUnknownJob is returned for operations on nonexistent job IDs.
var ErrUnknownJob = errors.New("sched: unknown job")

// ErrTooLarge is returned when a job requests more nodes than exist.
var ErrTooLarge = errors.New("sched: job requests more nodes than the cluster has")

// Scheduler is the batch scheduler. It is safe for concurrent use; call
// Tick (or run against a real clock with Run) to drive scheduling.
type Scheduler struct {
	clk   clock.Clock
	hooks Hooks

	mu      sync.Mutex
	nodes   map[string]string // node -> job ID ("" = idle)
	order   []string          // stable node ordering
	queue   []*Job            // pending, FIFO
	jobs    map[string]*Job
	nextID  int
	started int64
}

// New returns a scheduler managing numNodes identical nodes.
func New(clk clock.Clock, numNodes int, hooks Hooks) *Scheduler {
	s := &Scheduler{
		clk:   clk,
		hooks: hooks,
		nodes: make(map[string]string, numNodes),
		jobs:  make(map[string]*Job),
	}
	for i := 0; i < numNodes; i++ {
		name := fmt.Sprintf("node%03d", i)
		s.nodes[name] = ""
		s.order = append(s.order, name)
	}
	return s
}

// NumNodes returns the cluster size.
func (s *Scheduler) NumNodes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// IdleNodes returns the currently idle node count.
func (s *Scheduler) IdleNodes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idleLocked()
}

func (s *Scheduler) idleLocked() int {
	n := 0
	for _, j := range s.nodes {
		if j == "" {
			n++
		}
	}
	return n
}

// Submit enqueues a job and triggers a scheduling pass.
func (s *Scheduler) Submit(spec Spec) (*Job, error) {
	s.mu.Lock()
	if spec.Nodes <= 0 {
		spec.Nodes = 1
	}
	if spec.Nodes > len(s.order) {
		s.mu.Unlock()
		return nil, ErrTooLarge
	}
	if spec.ID == "" {
		s.nextID++
		spec.ID = fmt.Sprintf("job-%04d", s.nextID)
	}
	if _, dup := s.jobs[spec.ID]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("sched: duplicate job ID %q", spec.ID)
	}
	j := &Job{Spec: spec, State: Pending, SubmitTime: s.clk.Now()}
	s.jobs[j.ID] = j
	s.queue = append(s.queue, j)
	started := s.scheduleLocked()
	s.mu.Unlock()
	s.fireStarts(started)
	return j, nil
}

// Finish marks a running job complete, frees its nodes, and schedules
// queued jobs onto them.
func (s *Scheduler) Finish(jobID string) error {
	s.mu.Lock()
	j, ok := s.jobs[jobID]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownJob
	}
	if j.State != Running {
		s.mu.Unlock()
		return fmt.Errorf("sched: job %q is %v, not running", jobID, j.State)
	}
	ended := s.endLocked(j)
	started := s.scheduleLocked()
	s.mu.Unlock()
	if ended && s.hooks.End != nil {
		s.hooks.End(j)
	}
	s.fireStarts(started)
	return nil
}

// Cancel removes a pending job or ends a running one.
func (s *Scheduler) Cancel(jobID string) error {
	s.mu.Lock()
	j, ok := s.jobs[jobID]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownJob
	}
	switch j.State {
	case Pending:
		for i, q := range s.queue {
			if q.ID == jobID {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		j.State = Completed
		j.EndTime = s.clk.Now()
		s.mu.Unlock()
		return nil
	case Running:
		s.mu.Unlock()
		return s.Finish(jobID)
	default:
		s.mu.Unlock()
		return fmt.Errorf("sched: job %q already completed", jobID)
	}
}

// Tick expires walltimes and runs a scheduling pass; call it periodically
// (the simulator calls it every tick; Run drives it on a real clock).
func (s *Scheduler) Tick() {
	now := s.clk.Now()
	s.mu.Lock()
	var expired []*Job
	for _, j := range s.jobs {
		if j.State == Running && j.Walltime > 0 && now.Sub(j.StartTime) >= j.Walltime {
			expired = append(expired, j)
		}
	}
	sort.Slice(expired, func(i, k int) bool { return expired[i].ID < expired[k].ID })
	for _, j := range expired {
		s.endLocked(j)
	}
	started := s.scheduleLocked()
	s.mu.Unlock()
	if s.hooks.End != nil {
		for _, j := range expired {
			s.hooks.End(j)
		}
	}
	s.fireStarts(started)
}

// endLocked releases a job's nodes; returns true if it was running.
func (s *Scheduler) endLocked(j *Job) bool {
	if j.State != Running {
		return false
	}
	for _, n := range j.AssignedNodes {
		s.nodes[n] = ""
	}
	j.State = Completed
	j.EndTime = s.clk.Now()
	return true
}

// scheduleLocked starts queue-head jobs while they fit, then backfills
// smaller jobs that fit in the remaining idle nodes (EASY backfill
// without reservations: acceptable because all walltimes are soft here).
// It returns the jobs started, in start order.
func (s *Scheduler) scheduleLocked() []*Job {
	var started []*Job
	// Head-of-queue starts.
	for len(s.queue) > 0 && s.queue[0].Nodes <= s.idleLocked() {
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.startLocked(j)
		started = append(started, j)
	}
	// Backfill: any queued job that fits the leftover idle nodes.
	for i := 0; i < len(s.queue); {
		j := s.queue[i]
		if j.Nodes <= s.idleLocked() {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.startLocked(j)
			started = append(started, j)
			continue
		}
		i++
	}
	return started
}

func (s *Scheduler) startLocked(j *Job) {
	var assigned []string
	for _, n := range s.order {
		if len(assigned) == j.Nodes {
			break
		}
		if s.nodes[n] == "" {
			s.nodes[n] = j.ID
			assigned = append(assigned, n)
		}
	}
	j.AssignedNodes = assigned
	j.State = Running
	j.StartTime = s.clk.Now()
	s.started++
}

// fireStarts invokes the start hook outside the lock.
func (s *Scheduler) fireStarts(started []*Job) {
	if s.hooks.Start == nil {
		return
	}
	for _, j := range started {
		s.hooks.Start(j)
	}
}

// Lookup returns a copy of the job record.
func (s *Scheduler) Lookup(jobID string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[jobID]
	if !ok {
		return Job{}, ErrUnknownJob
	}
	return *j, nil
}

// Jobs returns copies of all job records, sorted by ID.
func (s *Scheduler) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// QueueLength returns the pending job count.
func (s *Scheduler) QueueLength() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}
