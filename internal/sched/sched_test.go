package sched

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"padll/internal/clock"
	"padll/internal/control"
	"padll/internal/stage"
)

var epoch = time.Date(2022, 5, 1, 0, 0, 0, 0, time.UTC)

func TestSubmitStartsWhenNodesFree(t *testing.T) {
	s := New(clock.NewSim(epoch), 4, Hooks{})
	j, err := s.Submit(Spec{ID: "a", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := s.Lookup("a")
	if got.State != Running || len(got.AssignedNodes) != 2 {
		t.Fatalf("job = %+v", got)
	}
	if s.IdleNodes() != 2 {
		t.Errorf("idle = %d, want 2", s.IdleNodes())
	}
	if j.ID != "a" {
		t.Errorf("ID = %q", j.ID)
	}
}

func TestQueueWhenFull(t *testing.T) {
	s := New(clock.NewSim(epoch), 2, Hooks{})
	if _, err := s.Submit(Spec{ID: "a", Nodes: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Spec{ID: "b", Nodes: 1}); err != nil {
		t.Fatal(err)
	}
	if b, _ := s.Lookup("b"); b.State != Pending {
		t.Errorf("b state = %v, want pending", b.State)
	}
	if s.QueueLength() != 1 {
		t.Errorf("queue = %d", s.QueueLength())
	}
	if err := s.Finish("a"); err != nil {
		t.Fatal(err)
	}
	if b, _ := s.Lookup("b"); b.State != Running {
		t.Errorf("b not started after a finished: %v", b.State)
	}
}

func TestBackfillSmallJobJumpsAhead(t *testing.T) {
	s := New(clock.NewSim(epoch), 4, Hooks{})
	s.Submit(Spec{ID: "big1", Nodes: 3})  // runs, 1 idle
	s.Submit(Spec{ID: "big2", Nodes: 4})  // queued (head)
	s.Submit(Spec{ID: "small", Nodes: 1}) // fits the idle node: backfills
	if j, _ := s.Lookup("small"); j.State != Running {
		t.Errorf("small = %v, want backfilled to running", j.State)
	}
	if j, _ := s.Lookup("big2"); j.State != Pending {
		t.Errorf("big2 = %v, want pending", j.State)
	}
}

func TestWalltimeExpiry(t *testing.T) {
	clk := clock.NewSim(epoch)
	s := New(clk, 1, Hooks{})
	s.Submit(Spec{ID: "a", Walltime: 10 * time.Second})
	clk.Advance(9 * time.Second)
	s.Tick()
	if j, _ := s.Lookup("a"); j.State != Running {
		t.Fatalf("expired early: %v", j.State)
	}
	clk.Advance(time.Second)
	s.Tick()
	j, _ := s.Lookup("a")
	if j.State != Completed {
		t.Fatalf("not expired: %v", j.State)
	}
	if got := j.EndTime.Sub(j.StartTime); got != 10*time.Second {
		t.Errorf("runtime = %v, want 10s", got)
	}
}

func TestCancelPendingAndRunning(t *testing.T) {
	s := New(clock.NewSim(epoch), 1, Hooks{})
	s.Submit(Spec{ID: "a"})
	s.Submit(Spec{ID: "b"})
	if err := s.Cancel("b"); err != nil {
		t.Fatal(err)
	}
	if j, _ := s.Lookup("b"); j.State != Completed {
		t.Errorf("cancelled pending = %v", j.State)
	}
	if err := s.Cancel("a"); err != nil {
		t.Fatal(err)
	}
	if j, _ := s.Lookup("a"); j.State != Completed {
		t.Errorf("cancelled running = %v", j.State)
	}
	if err := s.Cancel("a"); err == nil {
		t.Error("double cancel succeeded")
	}
}

func TestErrors(t *testing.T) {
	s := New(clock.NewSim(epoch), 2, Hooks{})
	if _, err := s.Submit(Spec{Nodes: 3}); err != ErrTooLarge {
		t.Errorf("oversized submit = %v", err)
	}
	if err := s.Finish("ghost"); err != ErrUnknownJob {
		t.Errorf("finish ghost = %v", err)
	}
	if _, err := s.Lookup("ghost"); err != ErrUnknownJob {
		t.Errorf("lookup ghost = %v", err)
	}
	s.Submit(Spec{ID: "dup"})
	if _, err := s.Submit(Spec{ID: "dup"}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if _, err := s.Submit(Spec{ID: "queued", Nodes: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Finish("queued"); err == nil {
		t.Error("finished a pending job")
	}
}

func TestGeneratedIDsUnique(t *testing.T) {
	s := New(clock.NewSim(epoch), 100, Hooks{})
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		j, err := s.Submit(Spec{})
		if err != nil {
			t.Fatal(err)
		}
		if seen[j.ID] {
			t.Fatalf("duplicate generated ID %q", j.ID)
		}
		seen[j.ID] = true
	}
}

func TestHooksFireWithPADLLStages(t *testing.T) {
	// The deployment story: job start spawns one PADLL stage per
	// assigned node and registers it; job end deregisters.
	clk := clock.NewSim(epoch)
	ctl := control.New(clk,
		control.WithAlgorithm(control.StaticEqualShare{}),
		control.WithClusterLimit(10000))

	var mu sync.Mutex
	stagesOf := map[string][]*stage.Stage{}
	hooks := Hooks{
		Start: func(j *Job) {
			mu.Lock()
			defer mu.Unlock()
			for _, node := range j.AssignedNodes {
				stg := stage.New(stage.Info{
					StageID:  j.ID + "@" + node,
					JobID:    j.ID,
					Hostname: node,
					User:     j.User,
				}, clk)
				if err := ctl.Register(&control.LocalConn{Stg: stg}); err != nil {
					t.Errorf("register: %v", err)
				}
				stagesOf[j.ID] = append(stagesOf[j.ID], stg)
			}
		},
		End: func(j *Job) {
			mu.Lock()
			defer mu.Unlock()
			for _, stg := range stagesOf[j.ID] {
				ctl.Deregister(stg.Info().StageID)
			}
			delete(stagesOf, j.ID)
		},
	}
	s := New(clk, 4, hooks)

	s.Submit(Spec{ID: "jA", Nodes: 2, User: "alice"})
	s.Submit(Spec{ID: "jB", Nodes: 2, User: "bob"})
	if got := len(ctl.Stages()); got != 4 {
		t.Fatalf("registered stages = %d, want 4 (2 jobs x 2 nodes)", got)
	}
	if jobs := ctl.Jobs(); len(jobs) != 2 {
		t.Fatalf("controller jobs = %v", jobs)
	}
	// The controller treats a job's stages as one: a job-wide rule is
	// split across its two nodes.
	alloc := ctl.RunOnce()
	if alloc["jA"] != 5000 || alloc["jB"] != 5000 {
		t.Errorf("allocation = %v", alloc)
	}
	mu.Lock()
	jAStages := append([]*stage.Stage(nil), stagesOf["jA"]...)
	mu.Unlock()
	for _, stg := range jAStages {
		rules := stg.Rules()
		if len(rules) != 1 || rules[0].Rate != 2500 {
			t.Errorf("per-stage rate = %+v, want 2500 (5000/2 nodes)", rules)
		}
	}

	if err := s.Finish("jA"); err != nil {
		t.Fatal(err)
	}
	if jobs := ctl.Jobs(); len(jobs) != 1 || jobs[0] != "jB" {
		t.Errorf("jobs after jA end = %v", jobs)
	}
}

// Property: nodes are never double-assigned and idle+held == total.
func TestNodeConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		clk := clock.NewSim(epoch)
		s := New(clk, 8, Hooks{})
		var ids []string
		n := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // submit
				n++
				id := fmt.Sprintf("j%d", n)
				if _, err := s.Submit(Spec{ID: id, Nodes: int(op%4) + 1}); err == nil {
					ids = append(ids, id)
				}
			case 1: // finish first running
				for _, id := range ids {
					if j, err := s.Lookup(id); err == nil && j.State == Running {
						s.Finish(id)
						break
					}
				}
			case 2: // tick
				clk.Advance(time.Second)
				s.Tick()
			}
			// Invariant: held nodes = sum of running jobs' node counts.
			held := 0
			assigned := map[string]bool{}
			for _, j := range s.Jobs() {
				if j.State == Running {
					held += j.Nodes
					for _, node := range j.AssignedNodes {
						if assigned[node] {
							return false // double assignment
						}
						assigned[node] = true
					}
				}
			}
			if held+s.IdleNodes() != s.NumNodes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFIFOOrderPreservedForEqualSizes(t *testing.T) {
	s := New(clock.NewSim(epoch), 1, Hooks{})
	s.Submit(Spec{ID: "a"})
	s.Submit(Spec{ID: "b"})
	s.Submit(Spec{ID: "c"})
	s.Finish("a")
	if j, _ := s.Lookup("b"); j.State != Running {
		t.Error("b should run before c")
	}
	if j, _ := s.Lookup("c"); j.State != Pending {
		t.Error("c should still be queued")
	}
}
