// Package mdtest implements an mdtest-like metadata benchmark: the
// standard HPC tool for stressing exactly the file-system resource PADLL
// protects. Like mdtest, it runs phased bulk operations — directory
// creation, file creation, stat, read(0-byte), and removal — across a
// per-rank directory tree, and reports each phase's throughput in
// operations per second.
//
// Because it drives plain POSIX calls through whatever client it is
// given, the same run exercises the raw file system (baseline), a
// passthrough PADLL shim, or a throttled stack — making it the natural
// companion to the paper's IOR data benchmark (§IV).
package mdtest

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"padll/internal/clock"
	"padll/internal/posix"
)

// Phase identifies one benchmark phase.
type Phase int

// The benchmark phases, in execution order.
const (
	// DirCreate creates the per-rank directory trees.
	DirCreate Phase = iota
	// FileCreate creates the file population.
	FileCreate
	// FileStat stats every file.
	FileStat
	// FileRead opens, reads zero bytes, and closes every file.
	FileRead
	// FileRemove unlinks every file.
	FileRemove
	// DirRemove removes the directory trees.
	DirRemove
	numPhases
)

var phaseNames = [...]string{
	"dir-create", "file-create", "file-stat", "file-read", "file-remove", "dir-remove",
}

// String returns the mdtest-style phase name.
func (p Phase) String() string {
	if p < 0 || p >= numPhases {
		return fmt.Sprintf("Phase(%d)", int(p))
	}
	return phaseNames[p]
}

// Phases lists all phases in order.
func Phases() []Phase {
	out := make([]Phase, numPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// Config parameterizes a run.
type Config struct {
	// Client issues the operations. Required.
	Client *posix.Client
	// Dir is the benchmark root (created if missing).
	Dir string
	// Ranks is the parallel task count (default 1).
	Ranks int
	// FilesPerRank is each rank's file population (default 256).
	FilesPerRank int
	// DirsPerRank is each rank's directory count; files spread across
	// them round-robin (default 4).
	DirsPerRank int
	// Clock paces throughput measurement (default real).
	Clock clock.Clock
}

func (c Config) withDefaults() (Config, error) {
	if c.Client == nil {
		return c, fmt.Errorf("mdtest: Client is required")
	}
	if c.Dir == "" {
		c.Dir = "/mdtest"
	}
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.FilesPerRank <= 0 {
		c.FilesPerRank = 256
	}
	if c.DirsPerRank <= 0 {
		c.DirsPerRank = 4
	}
	if c.Clock == nil {
		c.Clock = clock.NewReal()
	}
	return c, nil
}

// PhaseResult reports one phase's outcome.
type PhaseResult struct {
	Phase   Phase
	Ops     int64
	Elapsed time.Duration
	Errors  int64
}

// Rate returns the phase throughput in ops/second.
func (r PhaseResult) Rate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// Result is a full run's outcome.
type Result struct {
	Phases  []PhaseResult
	Elapsed time.Duration
}

// TotalOps sums operations across phases.
func (r Result) TotalOps() int64 {
	var n int64
	for _, p := range r.Phases {
		n += p.Ops
	}
	return n
}

// PhaseRate returns the named phase's rate (0 if absent).
func (r Result) PhaseRate(p Phase) float64 {
	for _, pr := range r.Phases {
		if pr.Phase == p {
			return pr.Rate()
		}
	}
	return 0
}

// Render formats the result like mdtest's summary table.
func (r Result) Render() string {
	out := fmt.Sprintf("mdtest summary (%v total)\n", r.Elapsed.Round(time.Millisecond))
	out += fmt.Sprintf("  %-12s %10s %12s %8s\n", "phase", "ops", "ops/sec", "errors")
	for _, p := range r.Phases {
		out += fmt.Sprintf("  %-12s %10d %12.0f %8d\n", p.Phase, p.Ops, p.Rate(), p.Errors)
	}
	return out
}

// Run executes the benchmark: every phase runs to completion across all
// ranks before the next begins (mdtest's barrier semantics).
func Run(ctx context.Context, cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if err := cfg.Client.Mkdir(cfg.Dir, 0o755); err != nil && err != posix.ErrExist {
		return Result{}, fmt.Errorf("mdtest: mkdir %s: %w", cfg.Dir, err)
	}

	start := cfg.Clock.Now()
	var res Result
	for _, phase := range Phases() {
		if ctx.Err() != nil {
			break
		}
		pr := cfg.runPhase(ctx, phase)
		res.Phases = append(res.Phases, pr)
	}
	res.Elapsed = cfg.Clock.Now().Sub(start)
	return res, nil
}

// rankDir names one rank's d-th directory.
func (cfg Config) rankDir(rank, d int) string {
	return fmt.Sprintf("%s/rank%03d.d%02d", cfg.Dir, rank, d)
}

// filePath names a rank's i-th file, spread across its directories.
func (cfg Config) filePath(rank, i int) string {
	return fmt.Sprintf("%s/f%06d", cfg.rankDir(rank, i%cfg.DirsPerRank), i)
}

// runPhase executes one phase across all ranks with a completion barrier.
func (cfg Config) runPhase(ctx context.Context, phase Phase) PhaseResult {
	var ops, errs atomic.Int64
	start := cfg.Clock.Now()
	var wg sync.WaitGroup
	for rank := 0; rank < cfg.Ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg.runRank(ctx, phase, rank, &ops, &errs)
		}(rank)
	}
	wg.Wait()
	return PhaseResult{
		Phase:   phase,
		Ops:     ops.Load(),
		Elapsed: cfg.Clock.Now().Sub(start),
		Errors:  errs.Load(),
	}
}

func (cfg Config) runRank(ctx context.Context, phase Phase, rank int, ops, errs *atomic.Int64) {
	c := cfg.Client
	count := func(err error) {
		ops.Add(1)
		if err != nil {
			errs.Add(1)
		}
	}
	switch phase {
	case DirCreate:
		for d := 0; d < cfg.DirsPerRank; d++ {
			if ctx.Err() != nil {
				return
			}
			count(c.Mkdir(cfg.rankDir(rank, d), 0o755))
		}
	case FileCreate:
		for i := 0; i < cfg.FilesPerRank; i++ {
			if ctx.Err() != nil {
				return
			}
			fd, err := c.Creat(cfg.filePath(rank, i), 0o644)
			if err == nil {
				err = c.Close(fd)
			}
			count(err)
		}
	case FileStat:
		for i := 0; i < cfg.FilesPerRank; i++ {
			if ctx.Err() != nil {
				return
			}
			_, err := c.Stat(cfg.filePath(rank, i))
			count(err)
		}
	case FileRead:
		for i := 0; i < cfg.FilesPerRank; i++ {
			if ctx.Err() != nil {
				return
			}
			fd, err := c.Open(cfg.filePath(rank, i), posix.ORdOnly, 0)
			if err == nil {
				_, err = c.Read(fd, 0)
				if cerr := c.Close(fd); err == nil {
					err = cerr
				}
			}
			count(err)
		}
	case FileRemove:
		for i := 0; i < cfg.FilesPerRank; i++ {
			if ctx.Err() != nil {
				return
			}
			count(c.Unlink(cfg.filePath(rank, i)))
		}
	case DirRemove:
		for d := 0; d < cfg.DirsPerRank; d++ {
			if ctx.Err() != nil {
				return
			}
			count(c.Rmdir(cfg.rankDir(rank, d)))
		}
	}
}
