package mdtest

import (
	"context"
	"strings"
	"testing"
	"time"

	"padll/internal/clock"
	"padll/internal/interpose"
	"padll/internal/localfs"
	"padll/internal/pfs"
	"padll/internal/policy"
	"padll/internal/posix"
	"padll/internal/stage"
)

var epoch = time.Date(2022, 5, 1, 0, 0, 0, 0, time.UTC)

func TestFullRunAgainstLocalFS(t *testing.T) {
	fs := localfs.New(clock.NewReal())
	res, err := Run(context.Background(), Config{
		Client:       posix.NewClient(fs),
		Dir:          "/bench",
		Ranks:        4,
		FilesPerRank: 50,
		DirsPerRank:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != int(numPhases) {
		t.Fatalf("phases = %d, want %d", len(res.Phases), numPhases)
	}
	wantOps := map[Phase]int64{
		DirCreate:  4 * 2,
		FileCreate: 4 * 50,
		FileStat:   4 * 50,
		FileRead:   4 * 50,
		FileRemove: 4 * 50,
		DirRemove:  4 * 2,
	}
	for _, pr := range res.Phases {
		if pr.Ops != wantOps[pr.Phase] {
			t.Errorf("%v ops = %d, want %d", pr.Phase, pr.Ops, wantOps[pr.Phase])
		}
		if pr.Errors != 0 {
			t.Errorf("%v errors = %d", pr.Phase, pr.Errors)
		}
		if pr.Rate() <= 0 {
			t.Errorf("%v rate = %v", pr.Phase, pr.Rate())
		}
	}
	// Everything cleaned up: only the root remains.
	entries, err := posix.NewClient(fs).Readdir("/bench")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("leftover entries: %v", entries)
	}
	if res.TotalOps() != 816 {
		t.Errorf("total ops = %d, want 816", res.TotalOps())
	}
}

func TestAgainstPFSChargesMDS(t *testing.T) {
	p := pfs.New(clock.NewReal(), pfs.Config{
		MDSCapacity: 1e12, MDSBurst: 1e12,
		OSTBandwidth: 1e12, OSTBurst: 1e12,
	})
	res, err := Run(context.Background(), Config{
		Client:       posix.NewClient(p),
		Dir:          "/lustre-mdtest",
		Ranks:        2,
		FilesPerRank: 20,
		DirsPerRank:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	// Every mdtest op is metadata-like; the MDS must have served at
	// least as many ops as the benchmark issued (read phase issues
	// open+close per file on top of the counted op).
	if st.MetadataOps < res.TotalOps() {
		t.Errorf("MDS ops %d < benchmark ops %d", st.MetadataOps, res.TotalOps())
	}
}

func TestThrottledRunIsSlower(t *testing.T) {
	run := func(throttle bool) time.Duration {
		clk := clock.NewReal()
		backend := localfs.New(clk)
		stg := stage.New(stage.Info{StageID: "s", JobID: "j"}, clk)
		if throttle {
			stg.ApplyRule(policy.Rule{ID: "meta", Rate: 2000, Burst: 50})
		}
		shim := interpose.New(backend, stg, clk)
		res, err := Run(context.Background(), Config{
			Client:       posix.NewClient(shim).WithJob("j", "u", 1),
			Dir:          "/b",
			Ranks:        2,
			FilesPerRank: 100,
			DirsPerRank:  2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	free := run(false)
	throttled := run(true)
	// ~1016 counted ops (plus read-phase extras) at 2000/s >= ~0.5s.
	if throttled < 300*time.Millisecond {
		t.Errorf("throttled run took %v; limit not enforced", throttled)
	}
	if throttled < free {
		t.Errorf("throttled (%v) faster than free (%v)", throttled, free)
	}
}

func TestCancelMidRun(t *testing.T) {
	fs := localfs.New(clock.NewReal())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, Config{
		Client:       posix.NewClient(fs),
		Dir:          "/c",
		FilesPerRank: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps() != 0 {
		t.Errorf("cancelled run did %d ops", res.TotalOps())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("Run without client succeeded")
	}
}

func TestRenderAndPhaseRate(t *testing.T) {
	fs := localfs.New(clock.NewReal())
	res, err := Run(context.Background(), Config{
		Client: posix.NewClient(fs), Dir: "/r", FilesPerRank: 5, DirsPerRank: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, p := range Phases() {
		if !strings.Contains(out, p.String()) {
			t.Errorf("render missing phase %v", p)
		}
	}
	if res.PhaseRate(FileCreate) <= 0 {
		t.Error("PhaseRate(FileCreate) = 0")
	}
	if res.PhaseRate(Phase(99)) != 0 {
		t.Error("PhaseRate for unknown phase != 0")
	}
}
