package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram records latency observations into exponentially sized buckets
// and supports approximate quantiles. PADLL stages use it for per-queue
// service latency; the overhead experiment (§IV-A) uses it to compare
// baseline against passthrough interposition.
type Histogram struct {
	// obs mirrors total so readers can detect "never observed" without
	// the mutex: a fleet collect reads three quantiles per queue per
	// round, and most queues on most stages are idle — their histograms
	// answer with one atomic load instead of a lock and a bucket walk.
	obs atomic.Int64

	mu     sync.Mutex
	bounds []float64 // upper bound (seconds) of each bucket, ascending
	counts []int64   // len(bounds)+1, last bucket is overflow
	total  int64
	sum    float64
	min    float64
	max    float64
}

// NewLatencyHistogram returns a histogram with exponentially spaced
// bucket bounds from 100 ns to ~100 s (factor 2 per bucket).
func NewLatencyHistogram() *Histogram {
	var bounds []float64
	for b := 100e-9; b < 100; b *= 2 {
		bounds = append(bounds, b)
	}
	return NewHistogram(bounds)
}

// NewHistogram returns a histogram with the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	cp := make([]float64, len(bounds))
	copy(cp, bounds)
	sort.Float64s(cp)
	return &Histogram{
		bounds: cp,
		counts: make([]int64, len(cp)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one latency observation.
func (h *Histogram) Observe(d time.Duration) { h.ObserveSeconds(d.Seconds()) }

// ObserveSeconds records one observation expressed in seconds.
//
//lint:coldpath latency is only observed on the shaping path, after the request already blocked in the bucket
func (h *Histogram) ObserveSeconds(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.total++
	h.obs.Store(h.total)
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the mean observation in seconds (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min returns the smallest observation in seconds (0 when empty).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation in seconds (0 when empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an upper-bound estimate for the q-th quantile
// (0 < q <= 1) using the bucket upper bound containing the rank.
func (h *Histogram) Quantile(q float64) float64 {
	if h.obs.Load() == 0 {
		return 0 // never observed: what the locked path would answer
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

// Quantiles3 answers three quantile queries in one lock acquisition —
// the shape of a queue-stats snapshot (p50/p95/p99) — and answers a
// never-observed histogram with zeros for the cost of one atomic load.
func (h *Histogram) Quantiles3(q1, q2, q3 float64) (v1, v2, v3 float64) {
	if h.obs.Load() == 0 {
		return 0, 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q1), h.quantileLocked(q2), h.quantileLocked(q3)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(q * float64(h.total)))
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// String renders a human-readable one-line summary.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.3gs p50=%.3gs p99=%.3gs max=%.3gs",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
	return b.String()
}
