package metrics

import (
	"testing"
	"time"

	"padll/internal/clock"
)

// TestRateCounterAddZeroAllocs is the runtime half of the
// //lint:hotpath contract on the counter add path: inside an open
// window, Add/AddAt touch only a sharded atomic cell. The hour-long
// window on a pinned simulated clock guarantees no roll happens inside
// the measurement, so the amortized coldpath (rollLocked) stays out of
// frame exactly as it does on the data-plane fast path.
func TestRateCounterAddZeroAllocs(t *testing.T) {
	clk := clock.NewSim(time.Unix(0, 0))
	rc := NewRateCounter("alloc", clk, time.Hour)
	now := clk.Now()

	rc.AddAt(1, now)
	if avg := testing.AllocsPerRun(1000, func() {
		rc.AddAt(1, now)
	}); avg != 0 {
		t.Errorf("AddAt allocates %.3f allocs/op, want 0 — the //lint:hotpath contract is broken at runtime", avg)
	}

	rc.Add(1)
	if avg := testing.AllocsPerRun(1000, func() {
		rc.Add(1)
	}); avg != 0 {
		t.Errorf("Add allocates %.3f allocs/op, want 0", avg)
	}
}
