package metrics

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"padll/internal/clock"
)

// rcShardCount is the number of in-window counter cells. Sixteen shards
// is enough to spread the replayer's rank threads without bloating the
// fold loop that runs at every window close.
const rcShardCount = 16

// rcShard is one in-window event cell, padded so neighbouring shards do
// not share a cache line (64B on every target we run on).
type rcShard struct {
	n atomic.Int64
	_ [56]byte
}

// RateCounter measures the throughput of a request stream over fixed
// sampling windows. It is the statistic a PADLL data-plane stage exposes
// to the control plane's collect step (§III-B step 1 of the feedback
// loop), and the instrument the experiment harness uses to draw figures.
//
// Add records events at the counter's clock's current instant. Closing a
// window appends a sample (events/second over the window) to the backing
// series. Windows with zero events still produce samples so figures show
// idle periods.
//
// Concurrency: adds inside an open window touch only a sharded atomic
// cell — no lock. The window boundary (close + series append) is guarded
// by a mutex, and shards are folded in fixed index order, so a
// single-goroutine clock.Sim run produces byte-identical series across
// runs. Under concurrent real-clock use, an add racing a window close may
// be attributed to the adjacent window — the same boundary ambiguity the
// previous fully-locked implementation had, since attribution was always
// decided by lock-acquisition order.
type RateCounter struct {
	clk    clock.Clock
	window time.Duration

	// winEndNano is the open window's end (unix nanoseconds). The add
	// fast path compares against it without taking the mutex; the strict
	// `<` mirrors rollLocked's `>=` close condition, so an instant that
	// lands exactly on the boundary takes the slow path and rolls.
	winEndNano atomic.Int64
	// shards is allocated on the first Add. A counter that has never
	// counted keeps no cells at all: its sweeps are a nil check, and a
	// fleet's many idle queues cost ~1KB less each — which is what keeps
	// a thousand-stage collect round inside the cache instead of walking
	// 16 padded lines per idle counter.
	shards atomic.Pointer[[rcShardCount]rcShard]

	// seq/pubTotal/pubRate back the lock-free read path of
	// TotalAndLastRateAt. seq is a seqlock generation: odd while a
	// window close is mutating the counter, bumped even when it
	// finishes. pubTotal mirrors totalClosed and pubRate the last
	// completed window's rate (as float bits), both republished under
	// the mutex at every close, so a reader that observes a stable even
	// seq has read a consistent pair without touching the mutex.
	seq      atomic.Uint32
	pubTotal atomic.Int64
	pubRate  atomic.Uint64

	mu       sync.Mutex
	winStart time.Time
	// totalClosed counts events already folded out of the shards; the
	// lifetime total is totalClosed plus the live shard sum.
	totalClosed int64
	series      *Series
	maxSamples  int // 0 = unbounded
}

// NewRateCounter returns a counter sampling over the given window. The
// first window opens at the clock's current instant.
func NewRateCounter(name string, clk clock.Clock, window time.Duration) *RateCounter {
	if window <= 0 {
		window = time.Second
	}
	rc := &RateCounter{
		clk:      clk,
		window:   window,
		winStart: clk.Now(),
		series:   NewSeries(name),
	}
	rc.winEndNano.Store(rc.winStart.Add(window).UnixNano())
	return rc
}

// SetMaxSamples bounds the backing series to the most recent n samples
// (0 disables the bound). Long-running stages use this to keep reporting
// state constant-sized.
func (rc *RateCounter) SetMaxSamples(n int) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.maxSamples = n
}

// shard picks the calling goroutine's counter cell, allocating the cell
// array on first use. Goroutine stacks live in distinct allocations, so
// the address of a stack variable separates concurrent adders without
// any shared state; the pointer is only folded into an index, never
// dereferenced or converted back. Which shard a count lands in never
// affects totals or window sums (integer addition commutes), so this
// has no bearing on determinism. A lost CAS race re-loads the winner's
// array, so no add ever lands in an orphaned cell.
func (rc *RateCounter) shard() *rcShard {
	arr := rc.shards.Load()
	if arr == nil {
		arr = rc.allocShards()
	}
	var probe byte
	h := uintptr(unsafe.Pointer(&probe))
	return &arr[(h>>11)&(rcShardCount-1)]
}

// allocShards publishes the cell array on a counter's first-ever Add. A
// lost CAS race re-loads the winner's array, so no add ever lands in an
// orphaned cell.
//
//lint:coldpath runs at most once per counter lifetime: first-add cell allocation
func (rc *RateCounter) allocShards() *[rcShardCount]rcShard {
	fresh := new([rcShardCount]rcShard)
	if rc.shards.CompareAndSwap(nil, fresh) {
		return fresh
	}
	return rc.shards.Load()
}

// Add records n events at the current instant, closing any elapsed
// windows first.
//
//lint:hotpath
func (rc *RateCounter) Add(n int64) { rc.AddAt(n, rc.clk.Now()) }

// AddAt records n events at a caller-supplied instant, letting hot paths
// share one clock read across several counters. Instants may lag the
// real clock slightly (hot paths amortize clock reads); an instant
// earlier than the open window is attributed to the open window.
//
//lint:hotpath
func (rc *RateCounter) AddAt(n int64, now time.Time) {
	if now.UnixNano() < rc.winEndNano.Load() {
		rc.shard().n.Add(n)
		return
	}
	rc.mu.Lock()
	rc.rollLocked(now)
	rc.shard().n.Add(n)
	rc.mu.Unlock()
}

// liveLocked sums the open window's shard cells (0 when no add has ever
// allocated them).
func (rc *RateCounter) liveLocked() int64 {
	arr := rc.shards.Load()
	if arr == nil {
		return 0
	}
	var sum int64
	for i := range arr {
		sum += arr[i].n.Load()
	}
	return sum
}

// Total returns the lifetime event count.
func (rc *RateCounter) Total() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.totalClosed + rc.liveLocked()
}

// CurrentRate returns the rate (events/second) accumulated so far in the
// still-open window, after closing elapsed windows. For a freshly rolled
// window this is the instantaneous demand estimate the control plane uses.
func (rc *RateCounter) CurrentRate() float64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	now := rc.clk.Now()
	rc.rollLocked(now)
	elapsed := now.Sub(rc.winStart).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(rc.liveLocked()) / elapsed
}

// TotalAndLastRate returns the lifetime event count and the most
// recently completed window's rate (0 when none has completed) in one
// lock acquisition and one shard sweep. It exists for the collect path:
// a queue snapshot wants both, and taking them separately costs two
// mutex round trips and two 16-cache-line shard walks per counter —
// measurable when a controller collects a thousand stages per round.
func (rc *RateCounter) TotalAndLastRate() (total int64, lastRate float64) {
	return rc.TotalAndLastRateAt(rc.clk.Now())
}

// TotalAndLastRateAt is TotalAndLastRate with a caller-supplied instant,
// so a snapshot of many counters shares one clock read. When the open
// window has not elapsed as of now, no close is due and the answer is
// the published pair plus the live shard sum — all atomics, no mutex.
// The seqlock re-check catches a close racing in from a reader with a
// later instant; on any doubt the slow path takes the lock. For a
// fleet's many idle queues (no cells allocated, window never elapsing
// under a quiet clock) a collect round reads three atomics per counter
// instead of locking and rolling ~184k times per 10k-stage round.
func (rc *RateCounter) TotalAndLastRateAt(now time.Time) (total int64, lastRate float64) {
	total, lastRate, _ = rc.CollectAt(now)
	return total, lastRate
}

// CollectAt is TotalAndLastRateAt additionally reporting whether the
// counter is quiet: no in-window counts pending and a zero last rate.
// A quiet counter is at a fixed point — absent further adds, every
// future read returns the same (total, lastRate) pair however far the
// clock advances, because only empty windows remain to close. (A
// non-zero lastRate decays to zero one window later, and pending counts
// surface as a non-zero rate when their window closes — both
// disqualify.) This is what lets a stage prove its statistics frozen
// without re-materializing them; see stage.CollectQuietInto.
func (rc *RateCounter) CollectAt(now time.Time) (total int64, lastRate float64, quiet bool) {
	if now.UnixNano() < rc.winEndNano.Load() {
		if s := rc.seq.Load(); s&1 == 0 {
			var live int64
			if arr := rc.shards.Load(); arr != nil {
				for i := range arr {
					live += arr[i].n.Load()
				}
			}
			total = rc.pubTotal.Load() + live
			lastRate = math.Float64frombits(rc.pubRate.Load())
			if rc.seq.Load() == s {
				return total, lastRate, live == 0 && lastRate == 0
			}
		}
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.rollLocked(now)
	live := rc.liveLocked()
	total = rc.totalClosed + live
	lastRate = 0
	if rc.series.Len() > 0 {
		lastRate = rc.series.Points[rc.series.Len()-1].Value
	}
	return total, lastRate, live == 0 && lastRate == 0
}

// LastWindowRate returns the most recently completed window's rate, or 0
// when no window has completed yet.
func (rc *RateCounter) LastWindowRate() float64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.rollLocked(rc.clk.Now())
	if rc.series.Len() == 0 {
		return 0
	}
	return rc.series.Points[rc.series.Len()-1].Value
}

// Flush closes the current window (even if partial) and returns a copy of
// the accumulated series. Used at experiment end so the tail shows up.
func (rc *RateCounter) Flush() *Series {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	now := rc.clk.Now()
	rc.rollLocked(now)
	rc.seq.Add(1) // odd: partial-window close in progress
	if live := rc.drainLocked(); live > 0 {
		elapsed := now.Sub(rc.winStart).Seconds()
		if elapsed > 0 {
			rc.appendLocked(now, float64(live)/elapsed)
		}
		rc.winStart = now
		rc.winEndNano.Store(now.Add(rc.window).UnixNano())
	}
	rc.seq.Add(1) // even: stable again
	return rc.snapshotLocked()
}

// Snapshot returns a copy of the completed-window series without closing
// the open window.
func (rc *RateCounter) Snapshot() *Series {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.rollLocked(rc.clk.Now())
	return rc.snapshotLocked()
}

func (rc *RateCounter) snapshotLocked() *Series {
	out := NewSeries(rc.series.Name)
	out.Points = append(out.Points, rc.series.Points...)
	return out
}

// drainLocked folds every shard into the running total and returns the
// folded sum. Shards are visited in fixed index order; the order is
// immaterial for the sums recorded (integer addition commutes) but keeps
// the fold itself deterministic.
func (rc *RateCounter) drainLocked() int64 {
	arr := rc.shards.Load()
	if arr == nil {
		return 0
	}
	var sum int64
	for i := range arr {
		sum += arr[i].n.Swap(0)
	}
	rc.totalClosed += sum
	rc.pubTotal.Store(rc.totalClosed)
	return sum
}

// rollLocked closes every window that has fully elapsed as of now. All
// events accumulated since the previous roll belong to the first closed
// window (they were recorded while it was open); any further elapsed
// windows were idle. winEndNano is published only after the last close,
// so a concurrent fast-path add either sees the stale end and queues on
// the mutex, or sees the final end and lands in the new open window.
//
//lint:coldpath window-close path: runs once per sampling window under the mutex and appends to the series
func (rc *RateCounter) rollLocked(now time.Time) {
	if now.Sub(rc.winStart) < rc.window {
		return
	}
	rc.seq.Add(1) // odd: close in progress, lock-free readers stand off
	end := rc.winStart.Add(rc.window)
	rc.appendLocked(end, float64(rc.drainLocked())/rc.window.Seconds())
	rc.winStart = end
	for now.Sub(rc.winStart) >= rc.window {
		end = rc.winStart.Add(rc.window)
		rc.appendLocked(end, 0)
		rc.winStart = end
	}
	rc.winEndNano.Store(rc.winStart.Add(rc.window).UnixNano())
	rc.seq.Add(1) // even: stable again
}

func (rc *RateCounter) appendLocked(t time.Time, v float64) {
	rc.series.Append(t, v)
	rc.pubRate.Store(math.Float64bits(v))
	if rc.maxSamples > 0 && rc.series.Len() > rc.maxSamples {
		rc.series.Points = rc.series.Points[rc.series.Len()-rc.maxSamples:]
	}
}
