package metrics

import (
	"sync"
	"time"

	"padll/internal/clock"
)

// RateCounter measures the throughput of a request stream over fixed
// sampling windows. It is the statistic a PADLL data-plane stage exposes
// to the control plane's collect step (§III-B step 1 of the feedback
// loop), and the instrument the experiment harness uses to draw figures.
//
// Add records events at the counter's clock's current instant. Closing a
// window appends a sample (events/second over the window) to the backing
// series. Windows with zero events still produce samples so figures show
// idle periods.
type RateCounter struct {
	mu         sync.Mutex
	clk        clock.Clock
	window     time.Duration
	winStart   time.Time
	inWindow   int64
	total      int64
	series     *Series
	maxSamples int // 0 = unbounded
}

// NewRateCounter returns a counter sampling over the given window. The
// first window opens at the clock's current instant.
func NewRateCounter(name string, clk clock.Clock, window time.Duration) *RateCounter {
	if window <= 0 {
		window = time.Second
	}
	return &RateCounter{
		clk:      clk,
		window:   window,
		winStart: clk.Now(),
		series:   NewSeries(name),
	}
}

// SetMaxSamples bounds the backing series to the most recent n samples
// (0 disables the bound). Long-running stages use this to keep reporting
// state constant-sized.
func (rc *RateCounter) SetMaxSamples(n int) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.maxSamples = n
}

// Add records n events at the current instant, closing any elapsed
// windows first.
func (rc *RateCounter) Add(n int64) { rc.AddAt(n, rc.clk.Now()) }

// AddAt records n events at a caller-supplied instant, letting hot paths
// share one clock read across several counters. The instant must not be
// before previously recorded events.
func (rc *RateCounter) AddAt(n int64, now time.Time) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.rollLocked(now)
	rc.inWindow += n
	rc.total += n
}

// Total returns the lifetime event count.
func (rc *RateCounter) Total() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.total
}

// CurrentRate returns the rate (events/second) accumulated so far in the
// still-open window, after closing elapsed windows. For a freshly rolled
// window this is the instantaneous demand estimate the control plane uses.
func (rc *RateCounter) CurrentRate() float64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	now := rc.clk.Now()
	rc.rollLocked(now)
	elapsed := now.Sub(rc.winStart).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(rc.inWindow) / elapsed
}

// LastWindowRate returns the most recently completed window's rate, or 0
// when no window has completed yet.
func (rc *RateCounter) LastWindowRate() float64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.rollLocked(rc.clk.Now())
	if rc.series.Len() == 0 {
		return 0
	}
	return rc.series.Points[rc.series.Len()-1].Value
}

// Flush closes the current window (even if partial) and returns a copy of
// the accumulated series. Used at experiment end so the tail shows up.
func (rc *RateCounter) Flush() *Series {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	now := rc.clk.Now()
	rc.rollLocked(now)
	if rc.inWindow > 0 {
		elapsed := now.Sub(rc.winStart).Seconds()
		if elapsed > 0 {
			rc.appendLocked(now, float64(rc.inWindow)/elapsed)
		}
		rc.inWindow = 0
		rc.winStart = now
	}
	return rc.snapshotLocked()
}

// Snapshot returns a copy of the completed-window series without closing
// the open window.
func (rc *RateCounter) Snapshot() *Series {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.rollLocked(rc.clk.Now())
	return rc.snapshotLocked()
}

func (rc *RateCounter) snapshotLocked() *Series {
	out := NewSeries(rc.series.Name)
	out.Points = append(out.Points, rc.series.Points...)
	return out
}

// rollLocked closes every window that has fully elapsed as of now.
func (rc *RateCounter) rollLocked(now time.Time) {
	for now.Sub(rc.winStart) >= rc.window {
		end := rc.winStart.Add(rc.window)
		rc.appendLocked(end, float64(rc.inWindow)/rc.window.Seconds())
		rc.inWindow = 0
		rc.winStart = end
	}
}

func (rc *RateCounter) appendLocked(t time.Time, v float64) {
	rc.series.Append(t, v)
	if rc.maxSamples > 0 && rc.series.Len() > rc.maxSamples {
		rc.series.Points = rc.series.Points[rc.series.Len()-rc.maxSamples:]
	}
}
