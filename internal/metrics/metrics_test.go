package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"padll/internal/clock"
)

var epoch = time.Date(2022, 5, 1, 0, 0, 0, 0, time.UTC)

func TestSeriesStats(t *testing.T) {
	s := NewSeries("x")
	for i, v := range []float64{1, 2, 3, 4, 5} {
		s.Append(epoch.Add(time.Duration(i)*time.Second), v)
	}
	if got := s.Mean(); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if got := s.Max(); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := s.Sum(); got != 15 {
		t.Errorf("Sum = %v, want 15", got)
	}
	if got := s.Stddev(); math.Abs(got-math.Sqrt(2)) > 1e-9 {
		t.Errorf("Stddev = %v, want sqrt(2)", got)
	}
}

func TestSeriesEmptyStats(t *testing.T) {
	s := NewSeries("empty")
	if s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 || s.Stddev() != 0 || s.Percentile(50) != 0 {
		t.Error("empty series statistics must all be zero")
	}
}

func TestSeriesPercentile(t *testing.T) {
	s := NewSeries("p")
	for i := 1; i <= 100; i++ {
		s.Append(epoch, float64(i))
	}
	cases := []struct{ p, want float64 }{{0, 1}, {50, 50}, {95, 95}, {100, 100}}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSeriesFractionAndRunAbove(t *testing.T) {
	s := NewSeries("r")
	for _, v := range []float64{1, 5, 5, 5, 1, 5, 5, 1} {
		s.Append(epoch, v)
	}
	if got := s.FractionAbove(4); math.Abs(got-5.0/8) > 1e-12 {
		t.Errorf("FractionAbove = %v, want 0.625", got)
	}
	if got := s.LongestRunAbove(4); got != 3 {
		t.Errorf("LongestRunAbove = %v, want 3", got)
	}
}

func TestSeriesCSV(t *testing.T) {
	s := NewSeries("ops")
	s.Append(epoch, 10)
	s.Append(epoch.Add(time.Minute), 20)
	csv := s.CSV()
	if !strings.HasPrefix(csv, "t_seconds,ops\n0,10.000\n60,20.000\n") {
		t.Errorf("unexpected CSV:\n%s", csv)
	}
}

func TestMergeCSV(t *testing.T) {
	a := NewSeries("a")
	b := NewSeries("b")
	a.Append(epoch, 1)
	a.Append(epoch.Add(time.Second), 2)
	b.Append(epoch, 3)
	csv := MergeCSV(a, b)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "t_seconds,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %v", len(lines), lines)
	}
	if lines[2] != "1,2.000," {
		t.Errorf("row with missing cell = %q, want %q", lines[2], "1,2.000,")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []float64, pa, pb uint8) bool {
		s := NewSeries("q")
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Append(epoch, v)
		}
		a, b := float64(pa%101), float64(pb%101)
		if a > b {
			a, b = b, a
		}
		return s.Percentile(a) <= s.Percentile(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRateCounterWindows(t *testing.T) {
	clk := clock.NewSim(epoch)
	rc := NewRateCounter("meta", clk, time.Second)
	rc.Add(100)
	clk.Advance(time.Second)
	rc.Add(200)
	clk.Advance(time.Second)
	rc.Add(0) // force roll
	s := rc.Snapshot()
	if s.Len() != 2 {
		t.Fatalf("got %d windows, want 2", s.Len())
	}
	if s.Points[0].Value != 100 || s.Points[1].Value != 200 {
		t.Errorf("window rates = %v,%v; want 100,200", s.Points[0].Value, s.Points[1].Value)
	}
}

func TestRateCounterIdleWindowsAreSampled(t *testing.T) {
	clk := clock.NewSim(epoch)
	rc := NewRateCounter("meta", clk, time.Second)
	rc.Add(10)
	clk.Advance(3 * time.Second)
	s := rc.Snapshot()
	if s.Len() != 3 {
		t.Fatalf("got %d windows, want 3 (idle windows must appear)", s.Len())
	}
	if s.Points[1].Value != 0 || s.Points[2].Value != 0 {
		t.Errorf("idle windows = %v,%v; want 0,0", s.Points[1].Value, s.Points[2].Value)
	}
}

func TestRateCounterTotalAndCurrentRate(t *testing.T) {
	clk := clock.NewSim(epoch)
	rc := NewRateCounter("x", clk, time.Second)
	clk.Advance(500 * time.Millisecond)
	rc.Add(50)
	if got := rc.Total(); got != 50 {
		t.Errorf("Total = %d, want 50", got)
	}
	if got := rc.CurrentRate(); math.Abs(got-100) > 1e-9 {
		t.Errorf("CurrentRate = %v, want 100 (50 events over 0.5s)", got)
	}
}

func TestRateCounterFlushIncludesPartialWindow(t *testing.T) {
	clk := clock.NewSim(epoch)
	rc := NewRateCounter("x", clk, time.Minute)
	rc.Add(60)
	clk.Advance(30 * time.Second)
	s := rc.Flush()
	if s.Len() != 1 {
		t.Fatalf("got %d samples after flush, want 1", s.Len())
	}
	if got := s.Points[0].Value; math.Abs(got-2) > 1e-9 {
		t.Errorf("flushed rate = %v, want 2 ops/s", got)
	}
}

func TestRateCounterMaxSamples(t *testing.T) {
	clk := clock.NewSim(epoch)
	rc := NewRateCounter("x", clk, time.Second)
	rc.SetMaxSamples(5)
	for i := 0; i < 20; i++ {
		rc.Add(int64(i))
		clk.Advance(time.Second)
	}
	if got := rc.Snapshot().Len(); got != 5 {
		t.Errorf("series len = %d, want 5", got)
	}
}

func TestRateCounterLastWindowRate(t *testing.T) {
	clk := clock.NewSim(epoch)
	rc := NewRateCounter("x", clk, time.Second)
	if rc.LastWindowRate() != 0 {
		t.Error("LastWindowRate on fresh counter should be 0")
	}
	rc.Add(42)
	clk.Advance(time.Second)
	if got := rc.LastWindowRate(); got != 42 {
		t.Errorf("LastWindowRate = %v, want 42", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewLatencyHistogram()
	for _, d := range []time.Duration{time.Microsecond, 10 * time.Microsecond, time.Millisecond} {
		h.Observe(d)
	}
	if h.Count() != 3 {
		t.Errorf("Count = %d, want 3", h.Count())
	}
	if h.Min() != time.Microsecond.Seconds() {
		t.Errorf("Min = %v", h.Min())
	}
	if h.Max() != time.Millisecond.Seconds() {
		t.Errorf("Max = %v", h.Max())
	}
	wantMean := (1e-6 + 10e-6 + 1e-3) / 3
	if math.Abs(h.Mean()-wantMean) > 1e-12 {
		t.Errorf("Mean = %v, want %v", h.Mean(), wantMean)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram statistics must be zero")
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond)
	}
	q := h.Quantile(0.99)
	// 1ms falls in bucket with upper bound >= 1ms and < 2x the next bound.
	if q < 1e-3 || q > 4e-3 {
		t.Errorf("Quantile(0.99) = %v, want within [1ms, 4ms]", q)
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Error("Quantile(0)/Quantile(1) should return min/max")
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 1; i <= 200; i++ {
		h.ObserveSeconds(float64(i) * 1e-5)
	}
	f := func(qa, qb uint16) bool {
		a := float64(qa%1001) / 1000
		b := float64(qb%1001) / 1000
		if a > b {
			a, b = b, a
		}
		return h.Quantile(a) <= h.Quantile(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(time.Millisecond)
	if s := h.String(); !strings.Contains(s, "n=1") {
		t.Errorf("String = %q", s)
	}
}
