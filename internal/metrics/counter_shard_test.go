package metrics

import (
	"sync"
	"testing"
	"time"

	"padll/internal/clock"
)

// TestRateCounterConcurrentAddsConserveTotal hammers the sharded fast
// path from many goroutines (run under -race) and checks no event is
// lost: the lifetime total and the sum over all window samples plus the
// open window must equal the number of adds.
func TestRateCounterConcurrentAddsConserveTotal(t *testing.T) {
	clk := clock.NewReal()
	rc := NewRateCounter("c", clk, 10*time.Millisecond)
	const (
		workers = 8
		perG    = 20000
	)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				rc.Add(1)
			}
		}()
	}
	// Concurrent readers force window rolls while adds are in flight.
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rc.LastWindowRate()
			rc.Total()
			time.Sleep(time.Millisecond)
		}
	}()
	for rc.Total() < workers*perG {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if got := rc.Total(); got != workers*perG {
		t.Fatalf("Total = %d, want %d", got, workers*perG)
	}
	// Every event must land in exactly one sample: closed windows plus
	// the flushed partial tail.
	s := rc.Flush()
	var events float64
	prev := time.Time{}
	for i, p := range s.Points {
		width := rc.window.Seconds()
		if i > 0 {
			width = p.T.Sub(prev).Seconds()
		}
		events += p.Value * width
		prev = p.T
	}
	// The first sample's width is one full window by construction; float
	// accumulation keeps this exact well within 0.5 for 160k events.
	if diff := events - float64(workers*perG); diff > 0.5 || diff < -0.5 {
		t.Fatalf("window samples account for %.1f events, want %d", events, workers*perG)
	}
}

// TestRateCounterSimDeterminism replays the same add schedule on two
// simulated clocks and requires byte-identical series: the sharded fast
// path must not perturb single-goroutine simulated runs.
func TestRateCounterSimDeterminism(t *testing.T) {
	epoch := time.Date(2022, 5, 1, 0, 0, 0, 0, time.UTC)
	run := func() *Series {
		clk := clock.NewSim(epoch)
		rc := NewRateCounter("c", clk, time.Second)
		for i := 0; i < 500; i++ {
			rc.Add(int64(i % 7))
			clk.Advance(137 * time.Millisecond)
		}
		return rc.Flush()
	}
	a, b := run(), run()
	if len(a.Points) != len(b.Points) {
		t.Fatalf("series lengths differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if !a.Points[i].T.Equal(b.Points[i].T) || a.Points[i].Value != b.Points[i].Value {
			t.Fatalf("point %d differs: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

// TestRateCounterBoundaryAttribution pins the exact window-edge semantics
// the sharded fast path must preserve: an add exactly at the window end
// closes the window first (strict `<` on the fast path mirrors rollLocked's
// `>=`), so the event belongs to the next window.
func TestRateCounterBoundaryAttribution(t *testing.T) {
	epoch := time.Date(2022, 5, 1, 0, 0, 0, 0, time.UTC)
	clk := clock.NewSim(epoch)
	rc := NewRateCounter("c", clk, time.Second)
	rc.Add(3)
	clk.Advance(time.Second) // exactly the boundary
	rc.Add(5)                // must open window 2, closing window 1 at 3 events
	clk.Advance(time.Second)
	s := rc.Flush()
	if len(s.Points) < 2 {
		t.Fatalf("want >= 2 samples, got %d", len(s.Points))
	}
	if s.Points[0].Value != 3 {
		t.Errorf("window 1 rate = %v, want 3", s.Points[0].Value)
	}
	if s.Points[1].Value != 5 {
		t.Errorf("window 2 rate = %v, want 5", s.Points[1].Value)
	}
	if got := rc.Total(); got != 8 {
		t.Errorf("Total = %d, want 8", got)
	}
}

func BenchmarkRateCounterAddSerial(b *testing.B) {
	rc := NewRateCounter("c", clock.NewReal(), time.Second)
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc.AddAt(1, now)
	}
}

func BenchmarkRateCounterAddParallel(b *testing.B) {
	rc := NewRateCounter("c", clock.NewReal(), time.Second)
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rc.AddAt(1, now)
		}
	})
}
