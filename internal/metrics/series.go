// Package metrics provides the measurement substrate for PADLL: windowed
// throughput counters (the statistics data-plane stages report to the
// control plane), time series with summary statistics (the material the
// paper's figures are drawn from), and latency histograms.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Point is one sample of a time series: a value observed over the sample
// window ending at T.
type Point struct {
	T     time.Time
	Value float64
}

// Series is an append-only time series, e.g. "ops/s sampled every minute".
type Series struct {
	Name   string
	Points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Append adds a sample to the series.
func (s *Series) Append(t time.Time, v float64) {
	s.Points = append(s.Points, Point{T: t, Value: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Values returns the sample values in order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Value
	}
	return out
}

// Mean returns the arithmetic mean of the sample values (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.Value
	}
	return sum / float64(len(s.Points))
}

// Max returns the maximum sample value (0 when empty).
func (s *Series) Max() float64 {
	var m float64
	for _, p := range s.Points {
		if p.Value > m {
			m = p.Value
		}
	}
	return m
}

// Min returns the minimum sample value (0 when empty).
func (s *Series) Min() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].Value
	for _, p := range s.Points[1:] {
		if p.Value < m {
			m = p.Value
		}
	}
	return m
}

// Sum returns the sum of all sample values.
func (s *Series) Sum() float64 {
	var sum float64
	for _, p := range s.Points {
		sum += p.Value
	}
	return sum
}

// Stddev returns the population standard deviation of the sample values.
func (s *Series) Stddev() float64 {
	n := len(s.Points)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, p := range s.Points {
		d := p.Value - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of the sample
// values using nearest-rank on the sorted values.
func (s *Series) Percentile(p float64) float64 {
	n := len(s.Points)
	if n == 0 {
		return 0
	}
	vals := s.Values()
	sort.Float64s(vals)
	if p <= 0 {
		return vals[0]
	}
	if p >= 100 {
		return vals[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return vals[rank-1]
}

// FractionAbove returns the fraction of samples strictly above threshold.
func (s *Series) FractionAbove(threshold float64) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var n int
	for _, p := range s.Points {
		if p.Value > threshold {
			n++
		}
	}
	return float64(n) / float64(len(s.Points))
}

// LongestRunAbove returns the longest consecutive run of samples strictly
// above threshold, as a sample count.
func (s *Series) LongestRunAbove(threshold float64) int {
	var best, cur int
	for _, p := range s.Points {
		if p.Value > threshold {
			cur++
			if cur > best {
				best = cur
			}
		} else {
			cur = 0
		}
	}
	return best
}

// CSV renders the series as "t_seconds,value" rows relative to the first
// sample's timestamp. The header row names the series.
func (s *Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t_seconds,%s\n", s.Name)
	if len(s.Points) == 0 {
		return b.String()
	}
	t0 := s.Points[0].T
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%.0f,%.3f\n", p.T.Sub(t0).Seconds(), p.Value)
	}
	return b.String()
}

// MergeCSV renders several series that share a sampling grid as one CSV
// table. Series may have different lengths; missing cells are empty.
func MergeCSV(series ...*Series) string {
	var b strings.Builder
	b.WriteString("t_seconds")
	maxLen := 0
	for _, s := range series {
		fmt.Fprintf(&b, ",%s", s.Name)
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	b.WriteByte('\n')
	if maxLen == 0 {
		return b.String()
	}
	var t0 time.Time
	for _, s := range series {
		if s.Len() > 0 {
			t0 = s.Points[0].T
			break
		}
	}
	for i := 0; i < maxLen; i++ {
		wrote := false
		for _, s := range series {
			if i < s.Len() {
				if !wrote {
					fmt.Fprintf(&b, "%.0f", s.Points[i].T.Sub(t0).Seconds())
					wrote = true
				}
				break
			}
		}
		if !wrote {
			fmt.Fprintf(&b, "%d", i)
		}
		for _, s := range series {
			if i < s.Len() {
				fmt.Fprintf(&b, ",%.3f", s.Points[i].Value)
			} else {
				b.WriteByte(',')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
