package chaos

import (
	"time"

	"padll/internal/control"
	"padll/internal/posix"
)

// The canonical scenarios below build a small cluster (two jobs, two
// stages each, reservations on both jobs) and schedule one failure
// storyline. Every random choice comes from the harness's seeded rng,
// so a scenario is fully determined by its seed.

func smallCluster(seed int64, evictAfter int, batched bool) *Harness {
	h := New(Config{
		Seed:       seed,
		Interval:   time.Second,
		Limit:      100_000,
		EvictAfter: evictAfter,
		Batched:    batched,
		// Priority (fixed rates): each job is granted its reservation
		// verbatim, so expected rates are exact regardless of demand.
		Algorithm: control.FixedRates{},
		Reservations: map[string]float64{
			"job1": 30_000,
			"job2": 50_000,
		},
	})
	for _, s := range []struct{ id, job string }{
		{"s1", "job1"}, {"s2", "job1"},
		{"s3", "job2"}, {"s4", "job2"},
	} {
		h.AddStage(s.id, s.job)
	}
	return h
}

// offerDemand makes every live stage report metadata demand each tick so
// collect rounds carry non-trivial numbers through the log.
func offerDemand(h *Harness, until time.Duration) {
	for t := time.Duration(0); t < until; t += h.Interval() {
		// Unnamed events are silent: demand refills would drown the log.
		h.At(t, "", func(h *Harness) {
			for _, id := range h.ids {
				n := h.nodes[id]
				if n.crashed.Load() {
					continue
				}
				n.Stg.Offer(&posix.Request{Op: posix.OpOpen, JobID: n.Job}, 5000, h.Interval())
			}
		})
	}
}

// ControllerCrashMidRun is the tentpole scenario: the controller dies
// partway through a push phase (some stages got the round's rates, some
// did not), stays dead for a seed-chosen outage, then restarts with an
// empty registry. Stages must freeze their limits while degraded and
// reconcile within one control interval of the restart.
func ControllerCrashMidRun(seed int64) *Harness {
	h := smallCluster(seed, 0, false)
	offerDemand(h, 30*time.Second)
	// Crash between rounds 5 and 9, after 1..3 of the round's pushes;
	// recover 6..10 intervals later.
	crashRound := 5 + h.rng.Intn(5)
	h.OutageStart = time.Duration(crashRound)*h.Interval() - h.Interval()/2
	h.OutageEnd = h.OutageStart + time.Duration(6+h.rng.Intn(5))*h.Interval()
	pushes := 1 + h.rng.Intn(3)
	h.At(h.OutageStart, "arm-mid-round-crash", func(h *Harness) { h.ArmMidRoundCrash(pushes) })
	h.At(h.OutageEnd, "restart-controller", func(h *Harness) { h.RestartController() })
	return h
}

// StageCrashMidCollect kills one seed-chosen stage in the middle of a
// collect fan-out. With eviction enabled the controller must sweep the
// corpse and re-grant its share to the job's surviving stage.
func StageCrashMidCollect(seed int64) *Harness {
	h := smallCluster(seed, 2, false)
	offerDemand(h, 30*time.Second)
	victim := h.ids[h.rng.Intn(len(h.ids))]
	at := time.Duration(4+h.rng.Intn(4))*h.Interval() - h.Interval()/2
	collects := 1 + h.rng.Intn(2)
	h.At(at, "arm-stage-crash", func(h *Harness) { h.ArmStageCrashAfterCollects(victim, collects) })
	return h
}

// PartitionHeal cuts one seed-chosen stage off from the controller, lets
// the controller evict it and the stage freeze its limits, then heals
// the link. The stage must re-register and be folded back into the
// allocation within one control interval of the heal.
func PartitionHeal(seed int64) *Harness {
	h := smallCluster(seed, 3, false)
	offerDemand(h, 30*time.Second)
	victim := h.ids[h.rng.Intn(len(h.ids))]
	from := time.Duration(3+h.rng.Intn(3))*h.Interval() + h.Interval()/2
	to := from + time.Duration(8+h.rng.Intn(4))*h.Interval()
	h.OutageStart, h.OutageEnd = from, to
	h.At(from, "partition", func(h *Harness) { h.Partition(victim) })
	h.At(to, "heal", func(h *Harness) { h.Heal(victim) })
	return h
}

// BatchedOutage drives the batched delta protocol through a partition/
// heal followed by a full controller outage and restart. The mid-round
// push crash stays a per-call scenario: in batch mode an unchanged rate
// skips the push round trip entirely, so a FixedRates steady state has
// no pushes to arm a budget against.
func BatchedOutage(seed int64) *Harness {
	h := smallCluster(seed, 3, true)
	offerDemand(h, 30*time.Second)
	victim := h.ids[h.rng.Intn(len(h.ids))]
	pFrom := time.Duration(3+h.rng.Intn(3))*h.Interval() + h.Interval()/2
	pTo := pFrom + time.Duration(4+h.rng.Intn(3))*h.Interval()
	h.At(pFrom, "partition", func(h *Harness) { h.Partition(victim) })
	h.At(pTo, "heal", func(h *Harness) { h.Heal(victim) })
	h.OutageStart = pTo + time.Duration(2+h.rng.Intn(3))*h.Interval() + h.Interval()/2
	h.OutageEnd = h.OutageStart + time.Duration(4+h.rng.Intn(4))*h.Interval()
	h.At(h.OutageStart, "crash-controller", func(h *Harness) { h.CrashController() })
	h.At(h.OutageEnd, "restart-controller", func(h *Harness) { h.RestartController() })
	return h
}

// treeCluster is smallCluster under the hierarchical control plane:
// each job's two stages sit behind their own aggregator shard, with
// decentralized borrowing inside each shard. Demand is skewed so the
// borrow path actually runs: s3 wants well past its per-stage share
// while its sibling s4 idles.
func treeCluster(seed int64) *Harness {
	h := New(Config{
		Seed:     seed,
		Interval: time.Second,
		Limit:    100_000,
		// Priority (fixed rates): job2's shard grant is exactly 50k, so
		// the conservation and work-conservation bounds below are exact.
		Algorithm: control.FixedRates{},
		Reservations: map[string]float64{
			"job1": 30_000,
			"job2": 50_000,
		},
		// Budget 4x burst: the overloaded stage can keep borrowing for
		// several rounds of an aggregator outage before its debt cap
		// bounds the divergence.
		BorrowBudget: 4.0,
	})
	for _, s := range []struct{ id, job string }{
		{"s1", "job1"}, {"s2", "job1"},
		{"s3", "job2"}, {"s4", "job2"},
	} {
		h.AddStage(s.id, s.job)
	}
	h.AddAggregator("agg-1", "s1", "s2")
	h.AddAggregator("agg-2", "s3", "s4")
	return h
}

// skewedDemand drives the tree cluster's load shape each tick: job1's
// stages comfortably inside their shares, job2's s3 at 40k against a
// 25k per-stage grant (the shortage borrowing covers), s4 idle (the
// lender).
func skewedDemand(h *Harness, until time.Duration) {
	for t := time.Duration(0); t < until; t += h.Interval() {
		h.At(t, "", func(h *Harness) {
			for _, id := range h.ids {
				n := h.nodes[id]
				if n.crashed.Load() {
					continue
				}
				want := map[string]float64{"s1": 5_000, "s2": 5_000, "s3": 40_000, "s4": 0}[id]
				if want > 0 {
					n.Stg.Offer(&posix.Request{Op: posix.OpOpen, JobID: n.Job}, want, h.Interval())
				}
			}
		})
	}
}

// AggregatorLoss crashes one aggregator shard mid-run and heals it a
// seed-chosen outage later. While the shard is dark its stages keep
// enforcing frozen grants and — because the borrow pool lives with the
// stages, not the control channel — the overloaded member keeps
// borrowing its idle sibling's tokens, bounded by the debt budget, so
// the shard stays work-conserving without ever exceeding its granted
// share. The heal's first plan push settles the accumulated ledger.
func AggregatorLoss(seed int64) *Harness {
	h := treeCluster(seed)
	skewedDemand(h, 30*time.Second)
	crashRound := 5 + h.rng.Intn(3)
	h.OutageStart = time.Duration(crashRound)*h.Interval() + h.Interval()/2
	h.OutageEnd = h.OutageStart + time.Duration(4+h.rng.Intn(3))*h.Interval()
	h.At(h.OutageStart, "crash-aggregator", func(h *Harness) { h.CrashAggregator("agg-2") })
	h.At(h.OutageEnd, "heal-aggregator", func(h *Harness) { h.HealAggregator("agg-2") })
	return h
}

// FrameLoss drops Stage.Batch reply frames on seed-chosen batched nodes
// at seed-chosen rounds: each loss leaves the stage's delta generation
// ahead of the controller's acknowledgement, forcing a full-snapshot
// resync on the next exchange while the fleet keeps its allocations.
func FrameLoss(seed int64) *Harness {
	h := smallCluster(seed, 0, true)
	offerDemand(h, 30*time.Second)
	drops := 2 + h.rng.Intn(3)
	for i := 0; i < drops; i++ {
		victim := h.ids[h.rng.Intn(len(h.ids))]
		at := time.Duration(3+h.rng.Intn(20))*h.Interval() + h.Interval()/2
		h.At(at, "drop-reply", func(h *Harness) { h.DropNextBatchReply(victim) })
	}
	return h
}
