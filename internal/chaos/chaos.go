// Package chaos is a deterministic fault-injection harness for PADLL's
// control plane. It assembles a controller and a set of stages entirely
// in-process on a simulated clock, then drives a scripted (and
// seed-randomized) schedule of failures — controller crashes mid-round,
// stage crashes mid-collect, network partitions that later heal — while
// recording every observable transition in an event log.
//
// Everything is single-threaded and clock-driven: two runs with the same
// seed produce byte-identical event logs, which is what lets the chaos
// tests assert exact recovery behaviour (frozen limits during an outage,
// reconciliation within one control interval of restart) instead of
// sleeping and hoping.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"padll/internal/clock"
	"padll/internal/control"
	"padll/internal/policy"
	"padll/internal/rpcio"
	"padll/internal/stage"
)

// ErrUnreachable is what injected network failures surface as.
var ErrUnreachable = errors.New("chaos: peer unreachable")

// ErrControllerDown marks calls that arrive while the simulated
// controller process is dead.
var ErrControllerDown = errors.New("chaos: controller is down")

// ErrReplyLost marks a batch exchange whose reply frame was dropped
// after the stage applied it — the applied-but-unacknowledged case the
// delta protocol must answer with a full-snapshot resync.
var ErrReplyLost = errors.New("chaos: reply frame lost")

// Config sizes a harness.
type Config struct {
	// Seed drives every random choice a scenario makes.
	Seed int64
	// Interval is the control-loop period (default 1s).
	Interval time.Duration
	// Limit is the cluster-wide rate limit (default 300_000).
	Limit float64
	// EvictAfter configures controller-side mark-sweep eviction
	// (0 = never evict).
	EvictAfter int
	// Reservations are per-job reserved rates, re-applied on restart.
	Reservations map[string]float64
	// Algorithm defaults to control.StaticEqualShare{}.
	Algorithm control.Algorithm
	// Batched runs the control plane over the batched delta protocol
	// (an in-process rpcio.StageService per stage) instead of per-call
	// pushes. Fault injection gates whole round trips: a batch with ops
	// consumes one push-budget unit, a collect one collect-budget unit.
	Batched bool
	// BorrowBudget > 0 enables decentralized token borrowing inside
	// every aggregator added with AddAggregator: sibling stages under
	// one shard share a borrow pool with this per-member debt budget
	// (a fraction of burst capacity).
	BorrowBudget float64
}

// Event is one scheduled action in a scenario.
type Event struct {
	At   time.Duration
	Name string
	Do   func(h *Harness)
}

// StageNode is one simulated application stage plus its failure state.
type StageNode struct {
	ID  string
	Job string
	Stg *stage.Stage

	conn control.StageConn
	// frames is the binary-codec transport under a batched node's handle;
	// nil in per-call mode. Frame-granular faults hook here.
	frames      *rpcio.EncodedLoopback
	partitioned atomic.Bool
	crashed     atomic.Bool
	// collectBudget < 0 disables the counter; otherwise the node crashes
	// permanently after that many further successful collects.
	collectBudget atomic.Int64
}

// AggNode is one simulated aggregator shard plus its failure state.
type AggNode struct {
	ID  string
	Agg *control.Aggregator

	conn    *chaosAggConn
	crashed atomic.Bool
}

// Harness wires a controller and stages together under injected faults.
type Harness struct {
	cfg   Config
	clk   *clock.Sim
	start time.Time
	ctl   *control.Controller
	nodes map[string]*StageNode
	ids   []string // sorted; the deterministic iteration order

	aggs   map[string]*AggNode
	aggIDs []string // sorted, like ids

	events   []Event
	nextTick time.Duration

	controllerDown bool
	// pushBudget < 0 disarms the mid-round crash; otherwise the
	// controller dies after that many further successful rate pushes.
	pushBudget atomic.Int64

	rng    *rand.Rand
	logBuf bytes.Buffer

	// OutageStart/OutageEnd record the scheduled controller outage
	// window (when a scenario has one) so tests can place probes.
	OutageStart, OutageEnd time.Duration
}

// New builds an empty harness; add stages, schedule events, then Run.
func New(cfg Config) *Harness {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Limit == 0 {
		cfg.Limit = 300_000
	}
	if cfg.Algorithm == nil {
		cfg.Algorithm = control.StaticEqualShare{}
	}
	h := &Harness{
		cfg:      cfg,
		clk:      clock.NewSim(time.Date(2022, 5, 1, 0, 0, 0, 0, time.UTC)),
		nodes:    map[string]*StageNode{},
		aggs:     map[string]*AggNode{},
		nextTick: cfg.Interval,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	h.start = h.clk.Now()
	h.pushBudget.Store(-1)
	h.ctl = h.newController()
	return h
}

func (h *Harness) newController() *control.Controller {
	opts := []control.Option{
		control.WithClusterLimit(h.cfg.Limit),
		control.WithAlgorithm(h.cfg.Algorithm),
		// The mid-round crash budget (pushBudget) is a single global
		// counter: pushes must run sequentially so the same seed always
		// crashes the controller after the same stage.
		control.WithPushConcurrency(1),
		control.WithErrorHandler(func(id string, err error) {
			if errors.Is(err, control.ErrEvicted) {
				h.logf("stage %s evicted by controller", id)
				return
			}
			h.logf("stage %s control error: %v", id, err)
		}),
	}
	if h.cfg.EvictAfter > 0 {
		opts = append(opts, control.WithEvictAfter(h.cfg.EvictAfter))
	}
	ctl := control.New(h.clk, opts...)
	for job, rate := range h.cfg.Reservations {
		ctl.SetReservation(job, rate)
	}
	return ctl
}

// AddStage registers a fresh stage with the controller.
func (h *Harness) AddStage(id, job string) *StageNode {
	n := &StageNode{
		ID:  id,
		Job: job,
		Stg: stage.New(stage.Info{StageID: id, JobID: job}, h.clk),
	}
	n.collectBudget.Store(-1)
	base := chaosConn{LocalConn: control.LocalConn{Stg: n.Stg}, h: h, node: n}
	if h.cfg.Batched {
		// Batched nodes speak the real binary frame codec end to end
		// (EncodedLoopback): every chaos exchange encodes and decodes
		// actual frames, so codec bugs and frame-level faults are inside
		// the deterministic loop.
		n.frames = rpcio.NewEncodedLoopback(rpcio.NewStageService(n.Stg))
		n.conn = &chaosBatchConn{chaosConn: base, handle: rpcio.NewStageHandle(n.frames)}
	} else {
		n.conn = &base
	}
	if err := h.ctl.Register(n.conn); err != nil {
		h.logf("stage %s registration error: %v", id, err)
	}
	h.nodes[id] = n
	h.ids = append(h.ids, id)
	sort.Strings(h.ids)
	h.logf("stage %s registered (job %s)", id, job)
	return n
}

// AddAggregator fronts the named stages (which must already be added)
// with an aggregator shard and registers it with the controller,
// switching the control loop into tree mode: each round exchanges one
// Agg.Round per shard instead of one RPC per stage. With
// Config.BorrowBudget > 0 the shard's members share a borrow pool on
// the managed control queue.
func (h *Harness) AddAggregator(id string, stageIDs ...string) *AggNode {
	var opts []control.AggOption
	if h.cfg.BorrowBudget > 0 {
		opts = append(opts, control.WithAggBorrowing(h.cfg.BorrowBudget))
	}
	agg := control.NewAggregator(id, opts...)
	for _, sid := range stageIDs {
		agg.AddMember(h.nodes[sid].conn)
	}
	n := &AggNode{ID: id, Agg: agg}
	n.conn = &chaosAggConn{h: h, node: n, inner: &control.LocalAggConn{Agg: agg}}
	h.aggs[id] = n
	h.aggIDs = append(h.aggIDs, id)
	sort.Strings(h.aggIDs)
	h.ctl.RegisterAggregator(n.conn)
	h.logf("aggregator %s registered (%d stages)", id, agg.Members())
	return n
}

// Node returns a stage node by ID (nil when absent).
func (h *Harness) Node(id string) *StageNode { return h.nodes[id] }

// AggregatorNode returns an aggregator node by ID (nil when absent).
func (h *Harness) AggregatorNode(id string) *AggNode { return h.aggs[id] }

// Rand is the scenario's seeded randomness source.
func (h *Harness) Rand() *rand.Rand { return h.rng }

// Controller exposes the live controller (it changes across restarts).
func (h *Harness) Controller() *control.Controller { return h.ctl }

// Interval returns the control-loop period.
func (h *Harness) Interval() time.Duration { return h.cfg.Interval }

// At schedules an event; call before Run.
func (h *Harness) At(at time.Duration, name string, do func(*Harness)) {
	h.events = append(h.events, Event{At: at, Name: name, Do: do})
}

// Log returns the event log so far.
func (h *Harness) Log() string { return h.logBuf.String() }

func (h *Harness) logf(format string, args ...any) {
	fmt.Fprintf(&h.logBuf, "t=+%-8v %s\n", h.clk.Now().Sub(h.start), fmt.Sprintf(format, args...))
}

// ---- fault primitives ----

// CrashController kills the controller process: the registry is lost and
// every stage-side probe fails until RestartController.
func (h *Harness) CrashController() {
	h.controllerDown = true
	h.logf("controller crashed")
}

// ArmMidRoundCrash makes the controller die after n more successful rate
// pushes — i.e. partway through a RunOnce push phase, so some stages have
// the new rates and others still enforce the old ones.
func (h *Harness) ArmMidRoundCrash(n int) {
	h.pushBudget.Store(int64(n))
	h.logf("controller armed to crash after %d pushes", n)
}

// RestartController boots a fresh controller process: empty registry,
// reservations restored from configuration. Stages re-register at their
// next heartbeat tick.
func (h *Harness) RestartController() {
	h.ctl = h.newController()
	h.controllerDown = false
	h.pushBudget.Store(-1)
	// Aggregator shards re-attach immediately (they dial the controller,
	// not the other way around); stages re-register at their next
	// heartbeat tick.
	for _, id := range h.aggIDs {
		h.ctl.RegisterAggregator(h.aggs[id].conn)
	}
	h.logf("controller restarted (empty registry)")
}

// CrashAggregator kills an aggregator shard: the controller's rounds to
// it fail, its member stages receive no plan pushes, and — when
// borrowing is on — the shard's pool keeps moving tokens between the
// members locally, with no settles until the next plan lands.
func (h *Harness) CrashAggregator(id string) {
	h.aggs[id].crashed.Store(true)
	h.logf("aggregator %s crashed", id)
}

// HealAggregator revives a crashed aggregator shard; the next control
// round folds its members back into the allocation and its first plan
// push settles the borrow ledger.
func (h *Harness) HealAggregator(id string) {
	h.aggs[id].crashed.Store(false)
	h.logf("aggregator %s healed", id)
}

// Partition cuts a stage off from the controller in both directions.
func (h *Harness) Partition(id string) {
	h.nodes[id].partitioned.Store(true)
	h.logf("stage %s partitioned", id)
}

// Heal reconnects a partitioned stage.
func (h *Harness) Heal(id string) {
	h.nodes[id].partitioned.Store(false)
	h.logf("stage %s healed", id)
}

// CrashStage kills a stage permanently.
func (h *Harness) CrashStage(id string) {
	h.nodes[id].crashed.Store(true)
	h.logf("stage %s crashed", id)
}

// ArmStageCrashAfterCollects makes a stage die permanently after n more
// successful collects — a crash in the middle of the controller's
// collect fan-out.
func (h *Harness) ArmStageCrashAfterCollects(id string, n int) {
	h.nodes[id].collectBudget.Store(int64(n))
	h.logf("stage %s armed to crash after %d collects", id, n)
}

// DropNextBatchReply arms a one-shot frame fault on a batched node: the
// next Stage.Batch reply frame is lost after the service applied the
// exchange. The node's state (rules, delta generation) advances but the
// controller never learns, so the delta protocol must detect the stale
// acknowledgement and resync with a full snapshot. Only meaningful with
// Config.Batched; a per-call node has no frame transport to fault.
func (h *Harness) DropNextBatchReply(id string) {
	n := h.nodes[id]
	if n.frames == nil {
		h.logf("stage %s has no frame transport; drop-reply ignored", id)
		return
	}
	armed := true
	n.frames.SetFault(func(dir rpcio.FrameDir, method string) error {
		// Single-threaded under the loopback's lock; armed needs no
		// atomicity.
		if armed && dir == rpcio.FrameReply && method == "Stage.Batch" {
			armed = false
			return ErrReplyLost
		}
		return nil
	})
	h.logf("stage %s armed to drop its next batch reply frame", id)
}

// ---- the run loop ----

// Run advances simulated time until the given offset, firing scheduled
// events and control/heartbeat ticks in timestamp order. Events that tie
// with a tick run first.
func (h *Harness) Run(until time.Duration) {
	sort.SliceStable(h.events, func(i, j int) bool { return h.events[i].At < h.events[j].At })
	ei := 0
	for {
		nextEvent := until + 1
		if ei < len(h.events) {
			nextEvent = h.events[ei].At
		}
		switch {
		case nextEvent <= h.nextTick && nextEvent <= until:
			h.advanceTo(nextEvent)
			ev := h.events[ei]
			ei++
			if ev.Name != "" {
				h.logf("event %s", ev.Name)
			}
			ev.Do(h)
		case h.nextTick <= until:
			h.advanceTo(h.nextTick)
			h.nextTick += h.cfg.Interval
			h.tick()
		default:
			h.advanceTo(until)
			return
		}
	}
}

func (h *Harness) advanceTo(at time.Duration) {
	target := h.start.Add(at)
	if target.After(h.clk.Now()) {
		h.clk.AdvanceTo(target)
	}
}

// tick models one control interval: first each stage's heartbeat (detect
// a lost controller, or re-register after recovery — which replays the
// controller's last-known rules), then the controller's feedback round.
func (h *Harness) tick() {
	for _, id := range h.ids {
		n := h.nodes[id]
		if n.crashed.Load() {
			continue
		}
		reachable := !h.controllerDown && !n.partitioned.Load()
		if !reachable {
			if n.Stg.SetDegraded(true) {
				h.logf("stage %s degraded: controller unreachable, limits frozen at %.0f",
					id, RuleRate(n.Stg, control.ControlRuleID))
			}
			continue
		}
		if n.Stg.Degraded() {
			if err := h.ctl.Register(n.conn); err != nil {
				h.logf("stage %s re-registration failed: %v", id, err)
				continue
			}
			n.Stg.SetDegraded(false)
			h.logf("stage %s re-registered after %v degraded", id, n.Stg.DegradedFor())
		}
	}
	if h.controllerDown {
		return
	}
	alloc := h.ctl.RunOnce()
	h.logf("control round: %s", fmtAlloc(alloc))
}

func fmtAlloc(alloc map[string]float64) string {
	if len(alloc) == 0 {
		return "(no allocation)"
	}
	keys := make([]string, 0, len(alloc))
	for k := range alloc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.0f", k, alloc[k])
	}
	return b.String()
}

// RuleRate returns the rate of a stage's rule by ID (-1 when absent).
func RuleRate(s *stage.Stage, id string) float64 {
	for _, r := range s.Rules() {
		if r.ID == id {
			return r.Rate
		}
	}
	return -1
}

// ---- the faulty transport ----

// chaosConn wraps the in-process stage connection with the harness's
// failure state. Collect runs inside the controller's bounded worker
// pool, so every flag it reads is atomic.
type chaosConn struct {
	control.LocalConn
	h    *Harness
	node *StageNode
}

func (c *chaosConn) Collect() (stage.Stats, error) {
	if err := c.collectGate(); err != nil {
		return stage.Stats{}, err
	}
	return c.LocalConn.Collect()
}

// collectGate applies the collect-side failure state: unreachable nodes
// fail, and an armed collect budget crashes the node when it hits zero.
func (c *chaosConn) collectGate() error {
	if c.node.crashed.Load() || c.node.partitioned.Load() {
		return ErrUnreachable
	}
	if b := c.node.collectBudget.Load(); b >= 0 {
		if b == 0 {
			c.node.crashed.Store(true)
			return ErrUnreachable
		}
		c.node.collectBudget.Store(b - 1)
	}
	return nil
}

func (c *chaosConn) SetRate(id string, rate float64) (bool, error) {
	if ok, err := c.reachable(); !ok {
		return false, err
	}
	return c.LocalConn.SetRate(id, rate)
}

func (c *chaosConn) ApplyRule(r policy.Rule) error {
	if ok, err := c.reachable(); !ok {
		return err
	}
	return c.LocalConn.ApplyRule(r)
}

// reachable gates every controller->stage push, and is where an armed
// mid-round crash fires: pushes run sequentially on the control loop's
// goroutine, so the budget decides deterministically which stages saw
// the new rates before the controller died.
func (c *chaosConn) reachable() (bool, error) {
	if c.h.controllerDown {
		return false, ErrControllerDown
	}
	if c.node.crashed.Load() || c.node.partitioned.Load() {
		return false, ErrUnreachable
	}
	if b := c.h.pushBudget.Load(); b >= 0 {
		if b == 0 {
			c.h.CrashController()
			return false, ErrControllerDown
		}
		c.h.pushBudget.Store(b - 1)
	}
	return true, nil
}

// chaosAggConn gates the controller's channel to one aggregator shard
// on the harness's failure state. The underlying aggregator keeps
// running while "crashed" — exactly the decentralized-borrowing story:
// the shard's stages (and their borrow pool) are alive, only the
// control channel through the aggregator is severed.
type chaosAggConn struct {
	h     *Harness
	node  *AggNode
	inner control.AggConn
}

var _ control.AggConn = (*chaosAggConn)(nil)

func (c *chaosAggConn) ID() string { return c.node.ID }

func (c *chaosAggConn) Round(grants []rpcio.JobGrant, collect bool, reply *rpcio.AggRoundReply) error {
	if c.h.controllerDown {
		return ErrControllerDown
	}
	if c.node.crashed.Load() {
		return ErrUnreachable
	}
	return c.inner.Round(grants, collect, reply)
}

func (c *chaosAggConn) Close() error { return nil }

// chaosBatchConn speaks the batched delta protocol to an in-process
// rpcio.StageService, with the same failure state gating whole round
// trips instead of individual calls. It satisfies control.BatchConn, so
// the controller drives it exactly like a remote batched stage.
type chaosBatchConn struct {
	chaosConn
	handle *rpcio.StageHandle
}

var _ control.BatchConn = (*chaosBatchConn)(nil)

// Collect rides the incremental protocol: after the first exchange only
// changed queues cross the (simulated) wire.
func (c *chaosBatchConn) Collect() (stage.Stats, error) {
	if err := c.collectGate(); err != nil {
		return stage.Stats{}, err
	}
	return c.handle.CollectDelta()
}

// CollectInto rides the incremental protocol under the same gating,
// deliberately opting the batched conn into control.CollectIntoConn.
func (c *chaosBatchConn) CollectInto(dst *stage.Stats) error {
	if err := c.collectGate(); err != nil {
		return err
	}
	return c.handle.CollectDeltaInto(dst)
}

// ExecBatch implements control.BatchConn. A batch carrying ops consumes
// one push-budget unit — the mid-round crash granularity is a round
// trip, matching what a real batched controller would observe.
func (c *chaosBatchConn) ExecBatch(ops []rpcio.StageOp, collect bool) ([]rpcio.OpResult, stage.Stats, error) {
	if len(ops) > 0 {
		if ok, err := c.reachable(); !ok {
			return nil, stage.Stats{}, err
		}
	}
	if collect {
		if c.h.controllerDown {
			return nil, stage.Stats{}, ErrControllerDown
		}
		if err := c.collectGate(); err != nil {
			return nil, stage.Stats{}, err
		}
	}
	return c.handle.ExecBatch(ops, collect)
}
