package chaos

import (
	"math"
	"strings"
	"testing"
	"time"

	"padll/internal/control"
	"padll/internal/stage"
)

const runFor = 30 * time.Second

// probeRates snapshots every live stage's managed rate at time at.
func probeRates(h *Harness, at time.Duration, into map[string]float64) {
	h.At(at, "", func(h *Harness) {
		for _, id := range h.ids {
			n := h.nodes[id]
			if n.crashed.Load() {
				continue
			}
			into[id] = RuleRate(n.Stg, control.ControlRuleID)
		}
	})
}

func TestControllerCrashFreezesAndReconciles(t *testing.T) {
	h := ControllerCrashMidRun(2022)
	frozen := map[string]float64{}
	during := map[string]float64{}
	after := map[string]float64{}
	// Just after the crash fires, record what each stage enforces; deep
	// into the outage it must be byte-for-byte the same (frozen, not
	// decayed to zero and not reset to unlimited).
	probeRates(h, h.OutageStart+h.Interval(), frozen)
	probeRates(h, h.OutageEnd-h.Interval()/2, during)
	// One full control interval after the restart, every stage must be
	// re-registered and re-tuned.
	probeRates(h, h.OutageEnd+h.Interval()+h.Interval()/2, after)
	h.Run(runFor)

	if len(frozen) != 4 {
		t.Fatalf("probe saw %d stages, want 4", len(frozen))
	}
	for id, rate := range frozen {
		if rate <= 0 {
			t.Errorf("stage %s enforcing rate %v during outage; limits must stay finite", id, rate)
		}
		if during[id] != rate {
			t.Errorf("stage %s drifted during the outage: %v -> %v (limits must freeze)", id, rate, during[id])
		}
	}
	// Reconciled: back under management at sane rates.
	for id, rate := range after {
		if rate <= 0 {
			t.Errorf("stage %s not reconciled after restart: rate %v", id, rate)
		}
	}
	log := h.Log()
	for _, want := range []string{
		"controller crashed",
		"degraded: controller unreachable, limits frozen",
		"controller restarted (empty registry)",
		"re-registered after",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("log missing %q:\n%s", want, log)
		}
	}
	// Degraded time must be accounted on every stage.
	for _, id := range h.ids {
		if h.Node(id).Stg.DegradedFor() <= 0 {
			t.Errorf("stage %s has no degraded time after an outage", id)
		}
	}
}

func TestReconcileWithinOneInterval(t *testing.T) {
	h := ControllerCrashMidRun(7)
	h.Run(runFor)
	log := h.Log()
	// Find the restart line and assert every stage re-registers before
	// one full interval has elapsed after it.
	restartAt := -1 * time.Second
	var reRegistered int
	for _, line := range strings.Split(log, "\n") {
		ts, rest, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		at, err := time.ParseDuration(strings.TrimPrefix(strings.TrimSpace(ts), "t=+"))
		if err != nil {
			continue
		}
		rest = strings.TrimSpace(rest)
		if strings.Contains(rest, "controller restarted") {
			restartAt = at
		}
		if strings.Contains(rest, "re-registered") {
			if restartAt < 0 {
				t.Fatalf("re-registration before any restart: %s", line)
			}
			if at-restartAt > h.Interval() {
				t.Errorf("stage reconciled %v after restart, want <= %v: %s", at-restartAt, h.Interval(), line)
			}
			reRegistered++
		}
	}
	if restartAt < 0 {
		t.Fatalf("no restart in log:\n%s", log)
	}
	if reRegistered != 4 {
		t.Errorf("%d stages re-registered, want 4\n%s", reRegistered, log)
	}
}

func TestStageCrashMidCollectEvictsAndRedistributes(t *testing.T) {
	h := StageCrashMidCollect(99)
	h.Run(runFor)
	log := h.Log()
	if !strings.Contains(log, "evicted by controller") {
		t.Fatalf("crashed stage never evicted:\n%s", log)
	}
	// Exactly one stage is down; its job's survivor must now hold the
	// job's whole grant (job share split by 1, not 2).
	var victim *StageNode
	for _, id := range h.ids {
		if h.Node(id).crashed.Load() {
			if victim != nil {
				t.Fatal("more than one crashed stage")
			}
			victim = h.Node(id)
		}
	}
	if victim == nil {
		t.Fatalf("no stage crashed:\n%s", log)
	}
	var survivor *StageNode
	for _, id := range h.ids {
		n := h.Node(id)
		if n.Job == victim.Job && n != victim {
			survivor = n
		}
	}
	// Fixed rates: job1 is granted its 30k reservation, job2 its 50k.
	// The survivor holds the full job grant once the corpse is swept.
	wantJob := map[string]float64{"job1": 30_000, "job2": 50_000}[victim.Job]
	if got := RuleRate(survivor.Stg, control.ControlRuleID); math.Abs(got-wantJob) > 1 {
		t.Errorf("survivor %s rate = %v, want the job's full %v", survivor.ID, got, wantJob)
	}
	if got := len(h.Controller().Stages()); got != 3 {
		t.Errorf("%d stages registered after eviction, want 3", got)
	}
}

func TestPartitionHealReintegrates(t *testing.T) {
	h := PartitionHeal(5)
	h.Run(runFor)
	log := h.Log()
	for _, want := range []string{"partitioned", "degraded: controller unreachable", "healed", "re-registered"} {
		if !strings.Contains(log, want) {
			t.Fatalf("log missing %q:\n%s", want, log)
		}
	}
	// After healing, all four stages are registered again and each
	// holds a managed per-stage rate (job grant split by two again).
	if got := len(h.Controller().Stages()); got != 4 {
		t.Errorf("%d stages registered after heal, want 4", got)
	}
	for _, id := range h.ids {
		// Fixed rates split per stage: job1 30k/2, job2 50k/2.
		want := map[string]float64{"job1": 15_000, "job2": 25_000}[h.Node(id).Job]
		if got := RuleRate(h.Node(id).Stg, control.ControlRuleID); math.Abs(got-want) > 1 {
			t.Errorf("stage %s rate = %v, want %v", id, got, want)
		}
	}
}

func TestSameSeedRunsAreByteIdentical(t *testing.T) {
	for name, mk := range map[string]func(int64) *Harness{
		"controller-crash": ControllerCrashMidRun,
		"stage-crash":      StageCrashMidCollect,
		"partition-heal":   PartitionHeal,
		"batched-outage":   BatchedOutage,
		"frame-loss":       FrameLoss,
		"aggregator-loss":  AggregatorLoss,
	} {
		a := mk(42)
		a.Run(runFor)
		b := mk(42)
		b.Run(runFor)
		if a.Log() != b.Log() {
			t.Errorf("%s: same seed produced different event logs:\n--- run 1\n%s\n--- run 2\n%s", name, a.Log(), b.Log())
		}
		c := mk(43)
		c.Run(runFor)
		if a.Log() == c.Log() {
			t.Errorf("%s: different seeds produced identical logs — scenario ignores its seed", name)
		}
	}
}

// TestBatchedModeRecoversAndStaysIncremental runs the batched-protocol
// scenario end to end: faults must not wedge the cluster (every stage is
// back at its fixed share after the outage) and steady-state collects
// must actually ride the incremental path rather than silently falling
// back to full snapshots every round.
func TestBatchedModeRecoversAndStaysIncremental(t *testing.T) {
	h := BatchedOutage(2022)
	h.Run(runFor)

	for _, id := range h.ids {
		n := h.Node(id)
		if n.crashed.Load() {
			continue
		}
		want := map[string]float64{"job1": 15_000, "job2": 25_000}[n.Job]
		if got := RuleRate(n.Stg, control.ControlRuleID); math.Abs(got-want) > 1 {
			t.Errorf("stage %s rate = %v after recovery, want %v", id, got, want)
		}
	}

	var deltas uint64
	for _, id := range h.ids {
		bc, ok := h.Node(id).conn.(*chaosBatchConn)
		if !ok {
			t.Fatalf("stage %s is not running a batched conn", id)
		}
		fulls, ds := bc.handle.CollectCounts()
		if fulls == 0 {
			t.Errorf("stage %s never took a full snapshot (first collect must be full)", id)
		}
		deltas += ds
	}
	if deltas == 0 {
		t.Error("no incremental collects happened — batched mode fell back to full snapshots every round")
	}

	log := h.Log()
	for _, want := range []string{"partition", "heal", "controller crashed", "controller restarted"} {
		if !strings.Contains(log, want) {
			t.Errorf("event log missing %q:\n%s", want, log)
		}
	}
}

// TestDroppedBatchReplyForcesFullResync injects the applied-but-
// unacknowledged failure: a Stage.Batch reply frame is lost after the
// stage applied the exchange, so the stage's delta generation runs
// ahead of the controller's acknowledgement. The delta protocol must
// answer the next exchange with a full-snapshot resync — and the fleet
// must hold its allocations throughout.
func TestDroppedBatchReplyForcesFullResync(t *testing.T) {
	h := smallCluster(7, 0, true)
	offerDemand(h, 20*time.Second)
	h.At(5*time.Second+h.Interval()/2, "drop-reply", func(h *Harness) { h.DropNextBatchReply("s1") })
	h.Run(20 * time.Second)

	bc, ok := h.Node("s1").conn.(*chaosBatchConn)
	if !ok {
		t.Fatal("s1 is not running a batched conn")
	}
	fulls, deltas := bc.handle.CollectCounts()
	if fulls < 2 {
		t.Errorf("s1 took %d full snapshots, want >= 2 (initial + post-drop resync)", fulls)
	}
	if deltas == 0 {
		t.Error("s1 never collected incrementally")
	}
	// Untouched peers must not have been forced to resync.
	other := h.Node("s3").conn.(*chaosBatchConn)
	if otherFulls, _ := other.handle.CollectCounts(); otherFulls != 1 {
		t.Errorf("s3 took %d full snapshots, want exactly the initial one", otherFulls)
	}

	log := h.Log()
	if !strings.Contains(log, "armed to drop its next batch reply frame") {
		t.Errorf("log missing the drop-arm line:\n%s", log)
	}
	if !strings.Contains(log, "reply frame lost") {
		t.Errorf("log missing the controller-observed frame loss:\n%s", log)
	}

	// FixedRates: each job1 stage ends at reservation/stages.
	if got, want := RuleRate(h.Node("s1").Stg, control.ControlRuleID), 15_000.0; math.Abs(got-want) > 1 {
		t.Errorf("s1 rate after frame loss = %v, want %v", got, want)
	}
}

// ctlTotal reads a stage's lifetime admitted count on the managed
// control queue.
func ctlTotal(s *stage.Stage) int64 {
	for _, q := range s.Collect().Queues {
		if q.RuleID == control.ControlRuleID {
			return q.Total
		}
	}
	return 0
}

// TestAggregatorLossBorrowsAndStaysConserving drives the hierarchical
// scenario: while job2's aggregator is dark, its overloaded member must
// keep running above its solo per-stage grant on tokens borrowed from
// the idle sibling (work conservation), the shard as a whole must never
// exceed its granted share (conservation: tokens move, they are not
// minted), and the heal's first plan push must settle the accumulated
// ledger and fold job2 back into the allocation within one interval.
func TestAggregatorLossBorrowsAndStaysConserving(t *testing.T) {
	h := AggregatorLoss(2022)
	type sample struct {
		borrowed float64
		s3, s4   int64
	}
	var before, during sample
	snap := func(into *sample) func(*Harness) {
		return func(h *Harness) {
			into.borrowed, _, _ = h.AggregatorNode("agg-2").Agg.BorrowCounts()
			into.s3 = ctlTotal(h.Node("s3").Stg)
			into.s4 = ctlTotal(h.Node("s4").Stg)
		}
	}
	// Bracket the outage window (probes sit just off the crash and heal
	// instants, so exactly the outage's demand ticks land between them).
	h.At(h.OutageStart-h.Interval()/4, "", snap(&before))
	h.At(h.OutageEnd-h.Interval()/4, "", snap(&during))
	h.Run(runFor)

	log := h.Log()
	for _, want := range []string{
		"aggregator agg-2 crashed",
		"agg-2 control error",
		"aggregator agg-2 healed",
	} {
		if !strings.Contains(log, want) {
			t.Fatalf("log missing %q:\n%s", want, log)
		}
	}

	ticks := float64((h.OutageEnd - h.OutageStart) / h.Interval())
	if during.borrowed <= before.borrowed {
		t.Errorf("no borrowing during the outage: %v -> %v", before.borrowed, during.borrowed)
	}
	// Work conservation: s3's 25k/s solo grant was exceeded on borrowed
	// tokens while its control channel was dark.
	admitted := float64(during.s3 - before.s3)
	if admitted <= 25_000*ticks+2_000 {
		t.Errorf("s3 admitted %v over %v outage ticks, want > solo grant %v — borrowing did not keep the shard work-conserving",
			admitted, ticks, 25_000*ticks)
	}
	// Conservation: the shard's members together stayed within the 50k/s
	// job2 grant (plus burst slack) — borrowing moved tokens, it never
	// minted them.
	shard := admitted + float64(during.s4-before.s4)
	if limit := 50_000*ticks + 5_000; shard > limit {
		t.Errorf("shard admitted %v during the outage, above its granted %v", shard, limit)
	}

	// The first post-heal plan push settled the ledger: every borrowed
	// token is accounted as repaid or forgiven.
	b, r, f := h.AggregatorNode("agg-2").Agg.BorrowCounts()
	if math.Abs(b-(r+f)) > 1e-6*(1+b) {
		t.Errorf("ledger unsettled after heal: borrowed %v != repaid %v + forgiven %v", b, r, f)
	}

	// Reconciled within one interval: the first control round at or
	// after the heal carries job2 again.
	healAt := -time.Second
	for _, line := range strings.Split(log, "\n") {
		ts, rest, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		at, err := time.ParseDuration(strings.TrimPrefix(strings.TrimSpace(ts), "t=+"))
		if err != nil {
			continue
		}
		rest = strings.TrimSpace(rest)
		if strings.Contains(rest, "aggregator agg-2 healed") {
			healAt = at
		}
		if healAt >= 0 && strings.Contains(rest, "control round") && strings.Contains(rest, "job2=50000") {
			if at-healAt > h.Interval() {
				t.Errorf("job2 reconciled %v after heal, want <= %v: %s", at-healAt, h.Interval(), line)
			}
			healAt = -time.Second
			break
		}
	}

	// During the outage the allocation ran on the surviving shard only.
	if !strings.Contains(log, "control round: job1=30000\n") {
		t.Errorf("no job1-only round during the outage:\n%s", log)
	}
}

// TestFrameLossScenarioConverges runs the seed-randomized frame-loss
// scenario: every drop must surface as a controller-visible error and a
// resync, never as a wedged or misallocated fleet.
func TestFrameLossScenarioConverges(t *testing.T) {
	h := FrameLoss(2022)
	h.Run(runFor)
	for _, id := range h.ids {
		n := h.Node(id)
		want := map[string]float64{"job1": 15_000, "job2": 25_000}[n.Job]
		if got := RuleRate(n.Stg, control.ControlRuleID); math.Abs(got-want) > 1 {
			t.Errorf("stage %s rate = %v after frame-loss run, want %v", id, got, want)
		}
	}
	if !strings.Contains(h.Log(), "reply frame lost") {
		t.Errorf("scenario never actually lost a frame:\n%s", h.Log())
	}
}
