package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"padll/internal/control"
	"padll/internal/pfs"
	"padll/internal/policy"
	"padll/internal/posix"
	"padll/internal/stage"
	"padll/internal/trace"
)

// flatTrace returns a trace with constant rate per op over the duration.
func flatTrace(d time.Duration, rate float64, ops ...posix.Op) *trace.Trace {
	tr := trace.NewTrace(time.Minute, ops...)
	n := int(d / time.Minute)
	rates := make([]float64, len(ops))
	for i := range rates {
		rates[i] = rate
	}
	for i := 0; i < n; i++ {
		tr.Append(rates...)
	}
	return tr
}

func TestBaselineAdmitsEverything(t *testing.T) {
	c := NewCluster(Config{})
	// 6 trace-minutes at 100 ops/s open; accel 60 -> 6s experiment time.
	c.AddJob(JobSpec{ID: "j1", Trace: flatTrace(6*time.Minute, 100, posix.OpOpen), Accel: 60})
	rep := c.Run()
	// The replayer follows the 100 ops/s curve over 6 wall seconds
	// (trace time compressed 60x): 600 operations.
	if math.Abs(rep.TotalDemanded-600) > 1 {
		t.Errorf("demanded = %v, want 600", rep.TotalDemanded)
	}
	if math.Abs(rep.TotalAdmitted-rep.TotalDemanded) > 1 {
		t.Errorf("baseline admitted %v of %v", rep.TotalAdmitted, rep.TotalDemanded)
	}
	done, ok := rep.Completion["j1"]
	if !ok {
		t.Fatal("job never completed")
	}
	// Unthrottled: completes right at trace end (6s).
	if done != 6*time.Second {
		t.Errorf("completion = %v, want 6s", done)
	}
	// Admitted rate per tick follows the curve: 100 ops/s.
	if got := rep.PerJob["j1"].Max(); math.Abs(got-100) > 1 {
		t.Errorf("peak rate = %v, want 100", got)
	}
}

func TestThrottledJobBuildsBacklogAndFinishesLate(t *testing.T) {
	c := NewCluster(Config{})
	c.AddJob(JobSpec{ID: "j1", Trace: flatTrace(6*time.Minute, 100, posix.OpOpen), Accel: 60})
	// Throttle to half the demand (50 ops/s against a 100 ops/s curve).
	for _, st := range c.StagesOf("j1") {
		st.ApplyRule(policy.Rule{ID: "cap", Rate: 50, Burst: 5})
	}
	rep := c.Run()
	done, ok := rep.Completion["j1"]
	if !ok {
		t.Fatal("job never completed")
	}
	// 600 ops at 50/s needs ~12s instead of 6s.
	if done < 11*time.Second || done > 14*time.Second {
		t.Errorf("completion = %v, want ≈12s", done)
	}
	// Admission rate must respect the cap every tick (small burst slack).
	for _, p := range rep.PerJob["j1"].Points {
		if p.Value > 50+5 {
			t.Errorf("tick rate %v exceeds cap 50(+5 burst)", p.Value)
		}
	}
	if math.Abs(rep.TotalAdmitted-600) > 1 {
		t.Errorf("admitted = %v, want all 600 eventually", rep.TotalAdmitted)
	}
}

func TestBacklogCatchUpOvershoot(t *testing.T) {
	// Throttle aggressively for the first half, then lift the limit: the
	// backlog must drain at a rate above the original demand (Fig. 4's
	// overshoot).
	c := NewCluster(Config{})
	c.AddJob(JobSpec{ID: "j1", Trace: flatTrace(10*time.Minute, 100, posix.OpGetAttr), Accel: 60})
	for _, st := range c.StagesOf("j1") {
		st.ApplyRule(policy.Rule{ID: "cap", Rate: 10, Burst: 1})
	}
	c.Schedule(5*time.Second, func(c *Cluster) {
		for _, st := range c.StagesOf("j1") {
			st.SetRate("cap", 50_000)
		}
	})
	rep := c.Run()
	// Demand rate is 100/s; during catch-up the admitted rate must
	// exceed it.
	var sawOvershoot bool
	for _, p := range rep.PerJob["j1"].Points {
		if p.Value > 110 {
			sawOvershoot = true
			break
		}
	}
	if !sawOvershoot {
		t.Error("no catch-up overshoot after limit was raised")
	}
}

func TestMultiStageJobSplitsLoad(t *testing.T) {
	c := NewCluster(Config{})
	c.AddJob(JobSpec{ID: "j1", Trace: flatTrace(2*time.Minute, 100, posix.OpOpen), Accel: 60, Stages: 4})
	rep := c.Run()
	if _, ok := rep.Completion["j1"]; !ok {
		t.Fatal("multi-stage job never completed")
	}
	stages := c.StagesOf("j1")
	if len(stages) != 4 {
		t.Fatalf("stages = %d", len(stages))
	}
	// Each stage passes through a quarter of the 200-op load.
	for _, st := range stages {
		stats := st.Collect()
		if stats.Passthrough != 50 {
			t.Errorf("stage passthrough = %d, want 50", stats.Passthrough)
		}
	}
}

func TestArrivalsAndControllerLifecycle(t *testing.T) {
	ctl := control.New(nil, // the controller never sleeps on this clock in RunOnce
		control.WithAlgorithm(control.StaticEqualShare{}),
		control.WithClusterLimit(12000))
	c := NewCluster(Config{Controller: ctl})
	c.AddJob(JobSpec{ID: "j1", Trace: flatTrace(4*time.Minute, 100, posix.OpOpen), Accel: 60})
	c.AddJob(JobSpec{ID: "j2", Arrival: 2 * time.Second, Trace: flatTrace(4*time.Minute, 100, posix.OpOpen), Accel: 60})
	rep := c.Run()
	if len(rep.Completion) != 2 {
		t.Fatalf("completions = %v", rep.Completion)
	}
	// After both finish, the controller has no jobs left.
	if got := ctl.Jobs(); len(got) != 0 {
		t.Errorf("jobs after run = %v", got)
	}
	// j2's series is shorter (arrived later).
	if rep.PerJob["j2"].Len() >= rep.PerJob["j1"].Len()+3 {
		t.Errorf("series lengths: j1=%d j2=%d", rep.PerJob["j1"].Len(), rep.PerJob["j2"].Len())
	}
}

func TestControllerEnforcesClusterLimit(t *testing.T) {
	ctl := control.New(nil,
		control.WithAlgorithm(control.StaticEqualShare{}),
		control.WithClusterLimit(100))
	c := NewCluster(Config{Controller: ctl})
	// Two jobs each demanding 100/s (200 aggregate) against a 100
	// cluster limit.
	c.AddJob(JobSpec{ID: "j1", Trace: flatTrace(4*time.Minute, 100, posix.OpOpen), Accel: 60})
	c.AddJob(JobSpec{ID: "j2", Trace: flatTrace(4*time.Minute, 100, posix.OpOpen), Accel: 60})
	rep := c.Run()
	// Aggregate admitted rate must hover at the limit, not demand.
	var above int
	for _, p := range rep.Aggregate.Points {
		if p.Value > 100*1.2 {
			above++
		}
	}
	if above > 2 { // allow brief transients at arrival before first loop run
		t.Errorf("aggregate exceeded cluster limit in %d ticks", above)
	}
	// Both jobs should take ≈2x the baseline time (throttled to half).
	for _, id := range []string{"j1", "j2"} {
		done, ok := rep.Completion[id]
		if !ok {
			t.Fatalf("%s never completed", id)
		}
		if done < 7*time.Second {
			t.Errorf("%s completed at %v; limit not enforced", id, done)
		}
	}
}

func TestPassthroughModeMatchesBaseline(t *testing.T) {
	run := func(mode stage.Mode) *Report {
		c := NewCluster(Config{StageMode: mode})
		c.AddJob(JobSpec{ID: "j1", Trace: flatTrace(3*time.Minute, 200, posix.OpOpen), Accel: 60})
		// Install a rule so passthrough actually classifies the stream.
		for _, st := range c.StagesOf("j1") {
			st.ApplyRule(policy.Rule{ID: "cap", Rate: 1, Burst: 1}) // starved, but ignored in Passthrough
		}
		return c.Run()
	}
	passthrough := run(stage.Passthrough)
	if _, ok := passthrough.Completion["j1"]; !ok {
		t.Fatal("passthrough job never completed")
	}
	if math.Abs(passthrough.TotalAdmitted-passthrough.TotalDemanded) > 1 {
		t.Error("passthrough throttled the stream")
	}
}

func TestPFSBackpressureFeedsBacklog(t *testing.T) {
	// MDS capacity far below demand: the stage admits freely (no rules),
	// but the PFS pushes unserved load back into the job's backlog, so
	// completion stretches to the MDS's pace.
	c := NewCluster(Config{})
	backend := pfs.New(c.Clock(), pfs.Config{MDSCapacity: 50, MDSBurst: 5})
	c.cfg.PFS = backend
	// Demand: 100 ops/s over 2 experiment-seconds; total 200 cost units
	// (getattr costs 1) against a 50 units/s MDS.
	c.AddJob(JobSpec{ID: "j1", Trace: flatTrace(2*time.Minute, 100, posix.OpGetAttr), Accel: 60})
	rep := c.Run()
	done, ok := rep.Completion["j1"]
	if !ok {
		t.Fatal("job never completed under MDS backpressure")
	}
	// 200 cost units at 50/s -> ≈4s, double the unthrottled 2s.
	if done < 3*time.Second || done > 6*time.Second {
		t.Errorf("completion = %v, want ≈4s (MDS-bound)", done)
	}
	if rep.PFSStats == nil {
		t.Fatal("PFS stats missing from report")
	}
	if math.Abs(rep.PFSStats.MetadataUnits-200) > 1 {
		t.Errorf("MDS served %v units, want 200", rep.PFSStats.MetadataUnits)
	}
}

func TestReportAggregateSumsJobs(t *testing.T) {
	c := NewCluster(Config{})
	c.AddJob(JobSpec{ID: "j1", Trace: flatTrace(2*time.Minute, 50, posix.OpOpen), Accel: 60})
	c.AddJob(JobSpec{ID: "j2", Trace: flatTrace(2*time.Minute, 70, posix.OpOpen), Accel: 60})
	rep := c.Run()
	// During steady state the aggregate is 50+70 = 120 ops/s.
	if got := rep.Aggregate.Max(); math.Abs(got-120) > 1 {
		t.Errorf("aggregate peak = %v, want 120", got)
	}
}

func TestScheduledEventsFireInOrder(t *testing.T) {
	c := NewCluster(Config{Duration: 3 * time.Second})
	c.AddJob(JobSpec{ID: "j1", Trace: flatTrace(10*time.Minute, 10, posix.OpOpen), Accel: 60})
	var order []int
	c.Schedule(2*time.Second, func(*Cluster) { order = append(order, 2) })
	c.Schedule(1*time.Second, func(*Cluster) { order = append(order, 1) })
	c.Schedule(0, func(*Cluster) { order = append(order, 0) })
	c.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("event order = %v", order)
	}
}

func TestDurationHorizonStopsUnfinishedJobs(t *testing.T) {
	c := NewCluster(Config{Duration: 2 * time.Second})
	c.AddJob(JobSpec{ID: "slow", Trace: flatTrace(time.Hour, 100, posix.OpOpen), Accel: 60})
	rep := c.Run()
	if _, ok := rep.Completion["slow"]; ok {
		t.Error("hour-long job reported complete after a 2s horizon")
	}
	if rep.Elapsed != 2*time.Second {
		t.Errorf("elapsed = %v, want 2s", rep.Elapsed)
	}
}

func TestVariableRateCurveIsFollowed(t *testing.T) {
	// Trace: 1 minute at 100 ops/s, then 1 minute at 20 ops/s.
	tr := trace.NewTrace(time.Minute, posix.OpOpen)
	tr.Append(100)
	tr.Append(20)
	c := NewCluster(Config{})
	c.AddJob(JobSpec{ID: "j1", Trace: tr, Accel: 60})
	rep := c.Run()
	s := rep.PerJob["j1"]
	if s.Len() < 2 {
		t.Fatalf("series too short: %d", s.Len())
	}
	if math.Abs(s.Points[0].Value-100) > 1 {
		t.Errorf("tick 1 rate = %v, want 100", s.Points[0].Value)
	}
	if math.Abs(s.Points[1].Value-20) > 1 {
		t.Errorf("tick 2 rate = %v, want 20", s.Points[1].Value)
	}
}

// Property: for any demand curve and any static limit, the sim conserves
// work — admitted never exceeds demanded, each completed job admitted
// everything it demanded, and per-tick admission respects limit + burst.
func TestSimConservationProperty(t *testing.T) {
	f := func(rates []uint16, limitRaw uint16) bool {
		if len(rates) == 0 {
			return true
		}
		if len(rates) > 20 {
			rates = rates[:20]
		}
		tr := trace.NewTrace(time.Minute, posix.OpOpen)
		for _, r := range rates {
			tr.Append(float64(r % 500))
		}
		limit := float64(limitRaw%300) + 10
		burst := limit / 10
		c := NewCluster(Config{Duration: 10 * time.Minute})
		c.AddJob(JobSpec{ID: "j", Trace: tr, Accel: 60})
		for _, st := range c.StagesOf("j") {
			st.ApplyRule(policy.Rule{ID: "cap", Rate: limit, Burst: burst})
		}
		rep := c.Run()
		if rep.TotalAdmitted > rep.TotalDemanded+1e-6 {
			return false
		}
		if _, done := rep.Completion["j"]; done {
			if rep.TotalAdmitted < rep.TotalDemanded-0.5 {
				return false
			}
		}
		for _, p := range rep.PerJob["j"].Points {
			if p.Value > limit+burst+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
