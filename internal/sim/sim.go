// Package sim is the cluster simulator the experiment harness runs on: it
// composes compute-node jobs (each replaying a metadata trace through its
// own data-plane stages), the PADLL control plane, and optionally the
// simulated PFS, over a simulated clock — so the paper's 45-minute
// evaluation scenarios (§IV) execute in milliseconds with the very same
// stage, policy, and control-plane code a live deployment uses.
//
// The engine is a fluid discrete-tick simulation: each tick, every active
// job integrates its trace curve to produce the operations that arrived
// during the tick, offers them (plus any backlog from earlier throttling)
// to its stages' token buckets, and records what was admitted. Backlog
// draining reproduces the catch-up overshoot of Fig. 4; job completion is
// reached when the job's whole trace has been admitted, reproducing the
// makespan differences of Fig. 5.
package sim

import (
	"fmt"
	"sort"
	"time"

	"padll/internal/clock"
	"padll/internal/control"
	"padll/internal/metrics"
	"padll/internal/pfs"
	"padll/internal/posix"
	"padll/internal/stage"
	"padll/internal/trace"
)

// JobSpec describes one job in a scenario.
type JobSpec struct {
	// ID is the scheduler job ID.
	ID string
	// User owns the job.
	User string
	// Arrival is when the job enters the system (experiment time).
	Arrival time.Duration
	// Trace is the workload to replay (rates already scaled as desired).
	Trace *trace.Trace
	// Accel compresses trace time: trace time = experiment time * Accel
	// (60 in the paper's methodology). Default 60.
	Accel float64
	// Stages is the number of compute nodes (data-plane stages) the job
	// spans. Default 1.
	Stages int
	// Reservation is the job's reserved/priority rate for control
	// algorithms that use it.
	Reservation float64
}

// Event is a scheduled scenario action (e.g. an administrator changing a
// static limit mid-run, as in Fig. 4).
type Event struct {
	At time.Duration
	Do func(c *Cluster)
}

// Config parameterizes a scenario run.
type Config struct {
	// Tick is the simulation step (default 1s experiment time).
	Tick time.Duration
	// Duration bounds the run (default: until all jobs finish).
	Duration time.Duration
	// Controller, when set, orchestrates job stages (registered on
	// arrival, deregistered on completion) and its feedback loop runs
	// every ControlInterval.
	Controller *control.Controller
	// ControlInterval is the feedback-loop period (default 1s).
	ControlInterval time.Duration
	// PFS, when set, receives all admitted metadata load (in weighted
	// cost units); load the MDS cannot serve is pushed back into job
	// backlogs, modelling a saturated metadata service.
	PFS *pfs.PFS
	// StageMode is the stages' interposition mode (Enforce by default;
	// Passthrough reproduces the overhead setup).
	StageMode stage.Mode
	// Window is the stats sampling window (default = Tick).
	Window time.Duration
}

// Cluster is one scenario instance.
type Cluster struct {
	cfg    Config
	clk    *clock.Sim
	start  time.Time
	jobs   []*job
	events []Event
	// controlPaused models a controller outage (see SetControlPaused).
	controlPaused bool
	// PFS saturation accounting.
	ticks          int
	saturatedTicks int
}

// job is the runtime state of a JobSpec.
type job struct {
	spec    JobSpec
	stages  []*stage.Stage
	conns   []*control.LocalConn
	pending map[posix.Op]float64 // backlog per op
	// traceDone marks the trace curve fully integrated.
	traceDone bool
	// finished marks trace done and backlog drained.
	finished   bool
	finishedAt time.Duration
	arrived    bool
	// admitted accumulates per-tick admissions for reporting.
	perOpSeries map[posix.Op]*metrics.Series
	totalSeries *metrics.Series
	demanded    float64
	admitted    float64
}

// Report is a completed run's output.
type Report struct {
	// PerJob maps job ID to its admitted-throughput series (ops/s per tick).
	PerJob map[string]*metrics.Series
	// PerJobOp maps job ID and op to admitted series.
	PerJobOp map[string]map[posix.Op]*metrics.Series
	// Aggregate is the cluster-wide admitted throughput.
	Aggregate *metrics.Series
	// Completion maps job ID to its completion (experiment) time; jobs
	// still unfinished at the horizon are absent.
	Completion map[string]time.Duration
	// Elapsed is the experiment time simulated.
	Elapsed time.Duration
	// TotalDemanded and TotalAdmitted count operations across jobs.
	TotalDemanded float64
	TotalAdmitted float64
	// PFSStats is the backend's view when a PFS was attached.
	PFSStats *pfs.Stats
	// PFSSaturatedFrac is the fraction of ticks the MDS spent saturated
	// (no spare service capacity) when a PFS was attached.
	PFSSaturatedFrac float64
}

// epoch is an arbitrary fixed simulation start instant.
var epoch = time.Date(2022, 5, 1, 0, 0, 0, 0, time.UTC)

// NewCluster builds a scenario.
func NewCluster(cfg Config) *Cluster {
	if cfg.Tick <= 0 {
		cfg.Tick = time.Second
	}
	if cfg.ControlInterval <= 0 {
		cfg.ControlInterval = time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = cfg.Tick
	}
	return &Cluster{cfg: cfg, clk: clock.NewSim(epoch), start: epoch}
}

// Clock exposes the simulation clock (stages created by AddJob use it).
func (c *Cluster) Clock() *clock.Sim { return c.clk }

// AttachPFS installs a backend built on the cluster's clock after
// construction (the PFS needs the Sim clock, which NewCluster creates).
func (c *Cluster) AttachPFS(backend *pfs.PFS) { c.cfg.PFS = backend }

// AttachController installs a controller after construction, for
// scenarios whose control policy closes a loop over a backend that
// itself needs the cluster's clock (e.g. an AIMD limit probing the PFS).
// Must be called before Run.
func (c *Cluster) AttachController(ctl *control.Controller) { c.cfg.Controller = ctl }

// AddJob registers a job spec before Run.
func (c *Cluster) AddJob(spec JobSpec) {
	if spec.Accel <= 0 {
		spec.Accel = 60
	}
	if spec.Stages <= 0 {
		spec.Stages = 1
	}
	j := &job{
		spec:        spec,
		pending:     make(map[posix.Op]float64),
		perOpSeries: make(map[posix.Op]*metrics.Series),
		totalSeries: metrics.NewSeries(spec.ID),
	}
	for _, op := range spec.Trace.Ops {
		j.perOpSeries[op] = metrics.NewSeries(fmt.Sprintf("%s:%s", spec.ID, op))
	}
	for s := 0; s < spec.Stages; s++ {
		st := stage.New(stage.Info{
			StageID:  fmt.Sprintf("%s-stage%d", spec.ID, s),
			JobID:    spec.ID,
			Hostname: fmt.Sprintf("node-%s-%d", spec.ID, s),
			PID:      1000 + len(c.jobs)*10 + s,
			User:     spec.User,
		}, c.clk, stage.WithMode(c.cfg.StageMode), stage.WithWindow(c.cfg.Window))
		j.stages = append(j.stages, st)
		j.conns = append(j.conns, &control.LocalConn{Stg: st})
	}
	c.jobs = append(c.jobs, j)
}

// StagesOf returns a job's stages (for scenario events that install rules
// directly, e.g. Fig. 4's per-operation static limits).
func (c *Cluster) StagesOf(jobID string) []*stage.Stage {
	for _, j := range c.jobs {
		if j.spec.ID == jobID {
			return j.stages
		}
	}
	return nil
}

// Schedule registers a timed scenario event.
func (c *Cluster) Schedule(at time.Duration, do func(c *Cluster)) {
	c.events = append(c.events, Event{At: at, Do: do})
}

// SetControlPaused models a controller crash (true) or recovery (false)
// mid-run: while paused the feedback loop does not execute and every
// live stage is marked degraded — it keeps enforcing the last rates it
// was pushed, exactly like a real stage whose heartbeat lost the
// controller. Resuming clears the degraded flags; the next control
// interval re-tunes every stage (reconciliation).
func (c *Cluster) SetControlPaused(paused bool) {
	c.controlPaused = paused
	for _, j := range c.jobs {
		if !j.arrived || j.finished {
			continue
		}
		for _, st := range j.stages {
			st.SetDegraded(paused)
		}
	}
}

// Run executes the scenario to completion (all jobs finished, or the
// configured horizon) and returns the report.
func (c *Cluster) Run() *Report {
	sort.SliceStable(c.events, func(i, j int) bool { return c.events[i].At < c.events[j].At })
	nextEvent := 0
	tick := c.cfg.Tick
	var now time.Duration
	lastControl := time.Duration(0)

	for {
		// Fire due events.
		for nextEvent < len(c.events) && c.events[nextEvent].At <= now {
			c.events[nextEvent].Do(c)
			nextEvent++
		}
		// Job arrivals.
		arrivedNow := false
		for _, j := range c.jobs {
			if !j.arrived && j.spec.Arrival <= now {
				j.arrived = true
				arrivedNow = true
				if c.cfg.Controller != nil {
					c.cfg.Controller.SetReservation(j.spec.ID, j.spec.Reservation)
					for _, conn := range j.conns {
						// Registration errors are impossible for local
						// conns with unique stage IDs.
						if err := c.cfg.Controller.Register(conn); err != nil {
							panic(err)
						}
					}
				}
			}
		}
		// A fresh arrival reallocates immediately so the new job starts
		// at its algorithmic share rather than the registration default.
		if arrivedNow && c.cfg.Controller != nil && !c.controlPaused {
			c.cfg.Controller.RunOnce()
		}

		// Advance simulated time; buckets refill for the elapsed tick.
		c.clk.Advance(tick)
		now += tick

		// Per-job demand integration and admission.
		for _, j := range c.jobs {
			if !j.arrived || j.finished {
				if j.arrived && j.finished {
					j.totalSeries.Append(c.clk.Now(), 0)
				}
				continue
			}
			c.stepJob(j, now, tick)
		}

		// PFS saturation accounting: a tick is saturated when the MDS
		// ends it with no spare capacity.
		if c.cfg.PFS != nil {
			c.ticks++
			if c.cfg.PFS.Stats().Saturated {
				c.saturatedTicks++
			}
		}

		// Feedback loop.
		if c.cfg.Controller != nil && !c.controlPaused && now-lastControl >= c.cfg.ControlInterval {
			c.cfg.Controller.RunOnce()
			lastControl = now
		}

		// Termination.
		allDone := true
		for _, j := range c.jobs {
			if !j.finished {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		if c.cfg.Duration > 0 && now >= c.cfg.Duration {
			break
		}
	}
	return c.report(now)
}

// stepJob integrates one tick of a job's trace and offers the load to its
// stages.
func (c *Cluster) stepJob(j *job, now time.Duration, tick time.Duration) {
	elapsed := now - j.spec.Arrival
	prev := elapsed - tick
	if prev < 0 {
		prev = 0
	}
	traceFrom := time.Duration(float64(prev) * j.spec.Accel)
	traceTo := time.Duration(float64(elapsed) * j.spec.Accel)
	if traceTo >= j.spec.Trace.Duration() {
		traceTo = j.spec.Trace.Duration()
		j.traceDone = true
	}

	var tickAdmitted float64
	step := j.spec.Trace.SampleInterval
	for _, op := range j.spec.Trace.Ops {
		// Integrate the rate curve over the covered trace window. The
		// trace-time integral is divided by Accel: the replayer follows
		// the curve's *rate* while compressing its time axis (§IV: each
		// replayer second covers a minute of the log), so one wall second
		// carries rate(traceT) operations, not a full minute's count.
		var arrived float64
		for t := traceFrom; t < traceTo; {
			// Advance to the next sample boundary or window end.
			boundary := t.Truncate(step) + step
			end := boundary
			if end > traceTo {
				end = traceTo
			}
			arrived += j.spec.Trace.RateAt(op, t) * (end - t).Seconds()
			t = end
		}
		arrived /= j.spec.Accel
		demand := j.pending[op] + arrived
		j.demanded += arrived

		var admitted float64
		if demand > 0 {
			// Split the offer across the job's stages.
			per := demand / float64(len(j.stages))
			req := &posix.Request{Op: op, Path: "/pfs/" + j.spec.ID, JobID: j.spec.ID, User: j.spec.User}
			for _, st := range j.stages {
				admitted += st.Offer(req, per, tick)
			}
		}
		j.pending[op] = demand - admitted
		j.admitted += admitted
		tickAdmitted += admitted
		j.perOpSeries[op].Append(c.clk.Now(), admitted/tick.Seconds())
	}

	// Offer admitted load to the PFS; unserved load returns to backlog,
	// spread back over the ops proportionally.
	if c.cfg.PFS != nil && tickAdmitted > 0 {
		served := c.cfg.PFS.OfferMetadataLoad(tickAdmitted, tick)
		if served < tickAdmitted {
			frac := (tickAdmitted - served) / tickAdmitted
			for _, op := range j.spec.Trace.Ops {
				last := j.perOpSeries[op].Points[len(j.perOpSeries[op].Points)-1].Value * tick.Seconds()
				back := last * frac
				j.pending[op] += back
				j.admitted -= back
			}
			tickAdmitted = served
		}
	}
	j.totalSeries.Append(c.clk.Now(), tickAdmitted/tick.Seconds())

	// Completion check: curve exhausted and backlog drained.
	if j.traceDone {
		var backlog float64
		for _, p := range j.pending {
			backlog += p
		}
		if backlog < 0.5 {
			j.finished = true
			j.finishedAt = now
			if c.cfg.Controller != nil {
				for _, conn := range j.conns {
					c.cfg.Controller.Deregister(conn.Info().StageID)
				}
			}
		}
	}
}

func (c *Cluster) report(elapsed time.Duration) *Report {
	rep := &Report{
		PerJob:     make(map[string]*metrics.Series),
		PerJobOp:   make(map[string]map[posix.Op]*metrics.Series),
		Aggregate:  metrics.NewSeries("aggregate"),
		Completion: make(map[string]time.Duration),
		Elapsed:    elapsed,
	}
	maxLen := 0
	for _, j := range c.jobs {
		rep.PerJob[j.spec.ID] = j.totalSeries
		rep.PerJobOp[j.spec.ID] = j.perOpSeries
		if j.finished {
			rep.Completion[j.spec.ID] = j.finishedAt
		}
		rep.TotalDemanded += j.demanded
		rep.TotalAdmitted += j.admitted
		if j.totalSeries.Len() > maxLen {
			maxLen = j.totalSeries.Len()
		}
	}
	// Aggregate across jobs; series start at different ticks (arrival),
	// so align from the end: every series sampled every tick until run
	// end.
	for i := 0; i < maxLen; i++ {
		var sum float64
		var ts time.Time
		for _, j := range c.jobs {
			s := j.totalSeries
			idx := i - (maxLen - s.Len())
			if idx >= 0 && idx < s.Len() {
				sum += s.Points[idx].Value
				ts = s.Points[idx].T
			}
		}
		rep.Aggregate.Append(ts, sum)
	}
	if c.cfg.PFS != nil {
		st := c.cfg.PFS.Stats()
		rep.PFSStats = &st
		if c.ticks > 0 {
			rep.PFSSaturatedFrac = float64(c.saturatedTicks) / float64(c.ticks)
		}
	}
	return rep
}
