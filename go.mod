module padll

go 1.22
