// Package padll is a storage middleware that enables QoS control over
// metadata (and data) workflows in HPC storage systems, reproducing
// "Protecting Metadata Servers From Harm Through Application-level I/O
// Control" (Macedo et al., IEEE CLUSTER 2022) in pure Go.
//
// PADLL follows a software-defined-storage design with two planes:
//
//   - the data plane (DataPlane) runs inside each application instance:
//     it transparently intercepts POSIX calls, classifies them by type,
//     class, path and job (request differentiation), and rate limits them
//     through per-queue token buckets before they reach the parallel file
//     system;
//   - the control plane (ControlPlane) is a logically centralized
//     coordinator that registers every stage, groups stages by job, and
//     runs feedback-loop control algorithms (static shares, fixed
//     priorities, proportional sharing, DRF) that continuously retune the
//     stages' rates.
//
// A minimal embedding looks like:
//
//	cp := padll.NewControlPlane(
//		padll.WithAlgorithm(padll.ProportionalShare()),
//		padll.WithClusterLimit(300_000))
//
//	dp, _ := padll.NewDataPlane(padll.JobInfo{JobID: "job1", User: "alice"},
//		padll.MountPFS("/lustre", backend),
//		padll.MountLocal("/", localBackend))
//	cp.AttachLocal(dp)
//
//	client := dp.Client() // a POSIX client; all calls are interposed
//	fd, _ := client.Open("/lustre/data.bin", padll.ORdOnly, 0)
//
// The repository also contains everything needed to regenerate the
// paper's evaluation: a Lustre-like PFS simulator, an ABCI-like trace
// generator and replayer, an IOR-like workload generator, a cluster
// simulator, and one benchmark per figure/table (see bench_test.go,
// DESIGN.md and EXPERIMENTS.md).
package padll

import (
	"fmt"
	"net"
	"time"

	"padll/internal/clock"
	"padll/internal/control"
	"padll/internal/interpose"
	"padll/internal/monitor"
	"padll/internal/mount"
	"padll/internal/osfs"
	"padll/internal/policy"
	"padll/internal/posix"
	"padll/internal/rpcio"
	"padll/internal/stage"
	"padll/internal/vfs"
)

// Re-exported building blocks. Aliases keep the internal packages as the
// single source of truth while giving users one import.
type (
	// Client is the typed POSIX client applications issue I/O through.
	Client = posix.Client
	// Request is one interposed POSIX call.
	Request = posix.Request
	// Reply is a call's result.
	Reply = posix.Reply
	// Op identifies one of the 42 interposed operations.
	Op = posix.Op
	// Class is the operation class (data/metadata/directory/ext-attr).
	Class = posix.Class
	// FileSystem is the boundary all backends implement.
	FileSystem = posix.FileSystem
	// FileInfo is the stat payload.
	FileInfo = posix.FileInfo
	// Rule is one QoS directive (matcher + rate + burst).
	Rule = policy.Rule
	// Matcher selects the requests a rule governs.
	Matcher = policy.Matcher
	// StageInfo identifies a data-plane stage to the control plane.
	StageInfo = stage.Info
	// StageStats is a stage's statistics snapshot.
	StageStats = stage.Stats
	// JobSnapshot is a job's aggregated state in a control round.
	JobSnapshot = control.JobSnapshot
	// Algorithm computes per-job allocations in the feedback loop.
	Algorithm = control.Algorithm
	// RoundStats is one feedback round's wire accounting (round trips,
	// skipped pushes, bytes, duration).
	RoundStats = control.RoundStats
	// ServiceStats counts what a stage's control service has served.
	ServiceStats = rpcio.ServiceStats
	// VFS bridges any FileSystem onto Go's io/fs contract (fs.FS,
	// fs.ReadDirFS, fs.StatFS, fs.ReadFileFS, fs.SubFS plus os-style
	// write extensions), so stock library code runs over the data plane.
	VFS = vfs.FS
	// VFSFile is an open write-capable file on a VFS.
	VFSFile = vfs.File
	// VFSOption configures a VFS (see VFSWithJob).
	VFSOption = vfs.Option
)

// Open flags and common constants, re-exported for call sites.
const (
	ORdOnly = posix.ORdOnly
	OWrOnly = posix.OWrOnly
	ORdWr   = posix.ORdWr
	OCreate = posix.OCreate
	OExcl   = posix.OExcl
	OTrunc  = posix.OTrunc
	OAppend = posix.OAppend

	// Unlimited as a rule rate means "do not throttle".
	Unlimited = policy.Unlimited

	// Operation classes for matchers.
	ClassData      = posix.ClassData
	ClassMetadata  = posix.ClassMetadata
	ClassDirectory = posix.ClassDirectory
	ClassExtAttr   = posix.ClassExtAttr

	// Enforcement mechanisms for rules: shaping queues requests until
	// tokens arrive (the paper's behaviour); policing rejects them with
	// ErrRateLimited.
	ActionShape = policy.ActionShape
	ActionDrop  = policy.ActionDrop
)

// ErrRateLimited is returned to callers whose request was rejected by a
// policing (ActionDrop) rule.
var ErrRateLimited = stage.ErrRateLimited

// WireVersion is the binary frame protocol version this build speaks —
// the control plane's only wire since the legacy gob path's one-release
// compatibility window closed. Decoders reject frames from any other
// version rather than guessing at field layouts.
const WireVersion = rpcio.WireVersion

// NewVFS wraps any FileSystem — a raw backend, a DataPlane, or a full
// interposed stack — as an io/fs file system. Prefer DataPlane.FS when
// bridging a data plane: it stamps the stage's job context for request
// differentiation.
func NewVFS(target FileSystem, opts ...VFSOption) *VFS { return vfs.New(target, opts...) }

// VFSWithJob stamps job differentiation context onto every bridged
// request.
func VFSWithJob(jobID, user string, pid int) VFSOption { return vfs.WithJob(jobID, user, pid) }

// NewOSBackend returns a FileSystem executing requests against the real
// OS tree rooted at dir (which must exist): the "real-workload onramp"
// backend. Virtual paths are confined to the root; mount it with
// MountPFS to rate limit actual kernel I/O.
func NewOSBackend(dir string) (FileSystem, error) { return osfs.New(dir, clock.NewReal()) }

// ParseRule parses a rule in DSL form, e.g.
// "limit id:open-cap job:job1 op:open rate:10k burst:500".
func ParseRule(s string) (Rule, error) { return policy.Parse(s) }

// ParseRules parses a newline-separated rule list with '#' comments.
func ParseRules(text string) ([]Rule, error) { return policy.ParseAll(text) }

// ---- control algorithms ----

// StaticShare divides the cluster limit equally among active jobs; with
// perJob > 0 every job gets exactly perJob (the paper's Static setup).
func StaticShare(perJob float64) Algorithm {
	return control.StaticEqualShare{PerJob: perJob}
}

// Priority assigns each job its reserved rate verbatim (the paper's
// Priority setup); set reservations via ControlPlane.SetReservation.
func Priority() Algorithm { return control.FixedRates{} }

// ProportionalShare guarantees per-job reservations and redistributes
// leftover rate proportionally (the paper's Proportional Sharing
// algorithm).
func ProportionalShare() Algorithm { return control.ProportionalShare{} }

// AIMDLimit is the adaptive cluster-limit policy: additive increase while
// the probe reports a healthy backend, multiplicative decrease on
// saturation. Install with WithLimitAdapter.
type AIMDLimit = control.AIMDLimit

// WithLimitAdapter closes the control loop on backend health: the
// adapter retunes the cluster limit before every allocation round.
func WithLimitAdapter(a control.LimitAdapter) ControlOption {
	return control.WithLimitAdapter(a)
}

// JobInfo identifies the application instance a data plane serves.
type JobInfo struct {
	// JobID is the scheduler job identifier.
	JobID string
	// User is the submitting user.
	User string
	// PID is the application process (informational).
	PID int
	// Hostname is the compute node (informational).
	Hostname string
	// StageID names this stage; derived from JobID+Hostname+PID when
	// empty.
	StageID string
}

// MountSpec declares one mount in the data plane's routing table.
type MountSpec struct {
	// Prefix is the mount point.
	Prefix string
	// Backend serves paths under Prefix.
	Backend FileSystem
	// Controlled marks the shared PFS whose requests are rate limited;
	// other mounts are forwarded without throttling.
	Controlled bool
	// Name labels the mount.
	Name string
}

// MountPFS declares a controlled (rate-limited) mount.
func MountPFS(prefix string, backend FileSystem) MountSpec {
	return MountSpec{Prefix: prefix, Backend: backend, Controlled: true, Name: "pfs:" + prefix}
}

// MountLocal declares an uncontrolled mount (node-local xfs, NFS, ...).
func MountLocal(prefix string, backend FileSystem) MountSpec {
	return MountSpec{Prefix: prefix, Backend: backend, Name: "local:" + prefix}
}

// DataPlane is one PADLL stage embedded in an application: the
// interposition shim plus its rate-limiting queues.
type DataPlane struct {
	shim   *interpose.Shim
	stg    *stage.Stage
	router *mount.Router
	clk    clock.Clock
	// server state when exposed over the network
	svc        *rpcio.StageService
	stop       func()
	listenAddr string
	controller string
	// heartbeat state (controller liveness probe)
	hbStop chan struct{}
	hbDone chan struct{}
}

// NewDataPlane builds a data plane over the given mounts.
func NewDataPlane(info JobInfo, mounts ...MountSpec) (*DataPlane, error) {
	if len(mounts) == 0 {
		return nil, fmt.Errorf("padll: at least one mount is required")
	}
	ms := make([]mount.Mount, len(mounts))
	for i, m := range mounts {
		ms[i] = mount.Mount{Prefix: m.Prefix, FS: m.Backend, Controlled: m.Controlled, Name: m.Name}
	}
	router, err := mount.NewRouter(ms...)
	if err != nil {
		return nil, err
	}
	if info.StageID == "" {
		info.StageID = fmt.Sprintf("%s@%s#%d", info.JobID, info.Hostname, info.PID)
	}
	clk := clock.NewReal()
	stg := stage.New(stage.Info{
		StageID:  info.StageID,
		JobID:    info.JobID,
		Hostname: info.Hostname,
		PID:      info.PID,
		User:     info.User,
	}, clk)
	shim := interpose.New(router, stg, clk)
	return &DataPlane{shim: shim, stg: stg, router: router, clk: clk}, nil
}

// Client returns a POSIX client whose calls are interposed by this data
// plane, stamped with the stage's job context.
func (dp *DataPlane) Client() *Client {
	info := dp.stg.Info()
	return posix.NewClient(dp.shim).WithJob(info.JobID, info.User, info.PID)
}

// FS returns an io/fs view of the data plane: every Open, ReadDir, Stat
// or WalkDir step issued through it is classified and rate limited like
// any other interposed call, stamped with the stage's job context.
func (dp *DataPlane) FS(opts ...VFSOption) *VFS {
	info := dp.stg.Info()
	merged := append([]VFSOption{VFSWithJob(info.JobID, info.User, info.PID)}, opts...)
	return vfs.New(dp.shim, merged...)
}

// RawClient returns a POSIX client that enters the mount router below
// the interposition shim: calls share the data plane's descriptor
// namespace but are neither classified nor throttled. Benchmark
// harnesses use it for housekeeping operations that must not count
// against QoS budgets (e.g. the open that precedes a replayed close).
func (dp *DataPlane) RawClient() *Client { return posix.NewClient(dp.router) }

// Apply implements FileSystem so a DataPlane can stand anywhere a backend
// does.
func (dp *DataPlane) Apply(req *Request, rep *Reply) error { return dp.shim.Apply(req, rep) }

// ApplyRule installs or updates a local rule.
func (dp *DataPlane) ApplyRule(r Rule) { dp.stg.ApplyRule(r) }

// Stats snapshots the stage's statistics.
func (dp *DataPlane) Stats() StageStats { return dp.stg.Collect() }

// InterceptionStats reports the shim's counters.
func (dp *DataPlane) InterceptionStats() interpose.Stats { return dp.shim.Stats() }

// Serve exposes the data plane's control service on addr (host:port, use
// ":0" for an ephemeral port) and, when controllerAddr is non-empty,
// registers with that control plane.
func (dp *DataPlane) Serve(addr, controllerAddr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("padll: listen %s: %w", addr, err)
	}
	dp.svc = rpcio.NewStageService(dp.stg)
	dp.stop = rpcio.ServeService(l, dp.svc)
	dp.listenAddr = l.Addr().String()
	if controllerAddr != "" {
		if err := rpcio.RegisterWithController(controllerAddr, dp.stg.Info(), dp.listenAddr); err != nil {
			dp.stop()
			dp.stop = nil
			return err
		}
		dp.controller = controllerAddr
	}
	return nil
}

// Addr returns the served control address ("" before Serve).
func (dp *DataPlane) Addr() string { return dp.listenAddr }

// ControlServiceStats reports what the stage's control service has
// served — calls, batched ops, delta vs full collects; ok is false
// before Serve.
func (dp *DataPlane) ControlServiceStats() (stats ServiceStats, ok bool) {
	if dp.svc == nil {
		return ServiceStats{}, false
	}
	return dp.svc.Served(), true
}

// StartHeartbeat begins probing the registered controller every interval
// (each probe bounded by timeout). When a probe fails the stage enters
// the Degraded state: it keeps enforcing the last rates the controller
// pushed (fail-secure — an unreachable controller must not mean
// unlimited I/O), and surfaces the condition through Stats. When the
// controller answers again, the stage re-registers — which replays the
// controller's last-known rule set for this stage — and leaves Degraded.
//
// Serve must have been called with a controller address first.
func (dp *DataPlane) StartHeartbeat(interval, timeout time.Duration) error {
	if dp.controller == "" {
		return fmt.Errorf("padll: no controller to monitor; Serve with a controller address first")
	}
	if dp.hbStop != nil {
		return fmt.Errorf("padll: heartbeat already running")
	}
	if interval <= 0 {
		return fmt.Errorf("padll: heartbeat interval must be positive, got %v", interval)
	}
	if timeout <= 0 {
		timeout = rpcio.DefaultCallTimeout
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	dp.hbStop, dp.hbDone = stop, done
	controller := dp.controller
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case <-dp.clk.After(interval):
			}
			if err := rpcio.ProbeController(controller, timeout); err != nil {
				dp.stg.SetDegraded(true)
				continue
			}
			if dp.stg.Degraded() {
				// The controller is back. Re-register so it replays the
				// last-known rules and folds this stage into the next
				// allocation round; only then clear the degraded flag.
				if rerr := rpcio.RegisterWithController(controller, dp.stg.Info(), dp.listenAddr); rerr == nil {
					dp.stg.SetDegraded(false)
				}
			}
		}
	}()
	return nil
}

// Degraded reports whether the stage has lost its controller.
func (dp *DataPlane) Degraded() bool { return dp.stg.Degraded() }

// DegradedFor returns the cumulative time spent degraded.
func (dp *DataPlane) DegradedFor() time.Duration { return dp.stg.DegradedFor() }

func (dp *DataPlane) stopHeartbeat() {
	if dp.hbStop == nil {
		return
	}
	close(dp.hbStop)
	<-dp.hbDone
	dp.hbStop, dp.hbDone = nil, nil
}

// Close deregisters from the control plane (if registered) and stops the
// control service.
func (dp *DataPlane) Close() error {
	var err error
	dp.stopHeartbeat()
	if dp.controller != "" {
		err = rpcio.DeregisterFromController(dp.controller, dp.stg.Info().StageID)
		dp.controller = ""
	}
	if dp.stop != nil {
		dp.stop()
		dp.stop = nil
	}
	dp.stg.Close()
	return err
}

// ControlPlane is the logically centralized coordinator.
type ControlPlane struct {
	ctl *control.Controller
	srv *control.Server
	mon *monitor.Server
}

// ControlOption configures a ControlPlane.
type ControlOption = control.Option

// WithClusterLimit caps the aggregate rate the algorithm hands out.
func WithClusterLimit(limit float64) ControlOption { return control.WithClusterLimit(limit) }

// WithAlgorithm installs the feedback-loop control algorithm.
func WithAlgorithm(a Algorithm) ControlOption { return control.WithAlgorithm(a) }

// WithControlledMatcher overrides which requests the managed queue
// throttles (default: all metadata-like classes).
func WithControlledMatcher(m Matcher) ControlOption { return control.WithControlledMatcher(m) }

// WithEvictAfter enables mark-sweep eviction: a stage whose collects or
// pushes fail for n consecutive control rounds is deregistered and its
// share redistributed (0 disables eviction, the default).
func WithEvictAfter(n int) ControlOption { return control.WithEvictAfter(n) }

// WithCollectConcurrency bounds the number of stages collected in
// parallel during each control round (default 8).
func WithCollectConcurrency(n int) ControlOption { return control.WithCollectConcurrency(n) }

// WithPushConcurrency bounds the number of stages the feedback loop
// pushes rates to in parallel each round (default 8; 1 forces
// sequential, deterministic-order pushes).
func WithPushConcurrency(n int) ControlOption { return control.WithPushConcurrency(n) }

// WithPipelinedRounds fuses each feedback round's push phase into the
// next round's batched collect exchange, halving steady-state round
// trips per stage at the cost of one round of enactment staleness (the
// rate computed in round N is enforced by round N+1's exchange). The
// classic two-phase loop stays the default.
func WithPipelinedRounds() ControlOption { return control.WithPipelinedRounds() }

// WithGroupBy overrides the feedback loop's orchestration granularity:
// the default groups stages per job; GroupByUser shares one allocation
// among all of a user's jobs (the paper's "group of jobs" level).
func WithGroupBy(f func(StageInfo) string) ControlOption { return control.WithGroupBy(f) }

// GroupByUser groups stages by submitting user.
func GroupByUser(info StageInfo) string { return control.GroupByUser(info) }

// WithTopology enables the hierarchical control plane: registered
// stages are auto-sharded, in stage-ID order, into aggregators of at
// most shardSize members, and each control round exchanges one RPC per
// shard instead of one per stage.
func WithTopology(shardSize int) ControlOption { return control.WithTopology(shardSize) }

// WithBorrowing enables decentralized token borrowing between sibling
// stages inside each auto-built shard (see WithTopology): a stage that
// runs dry between control rounds borrows unused tokens from idle
// siblings, bounded by budget (a fraction of burst capacity;
// non-positive selects the default), and debts settle when the next
// plan lands. Tokens move rather than being minted, so a shard's
// aggregate enforcement never exceeds its granted share.
func WithBorrowing(budget float64) ControlOption { return control.WithBorrowing(budget) }

// NewControlPlane builds a control plane.
func NewControlPlane(opts ...ControlOption) *ControlPlane {
	return &ControlPlane{ctl: control.New(clock.NewReal(), opts...)}
}

// AttachLocal registers an in-process data plane (no RPC hop) — the path
// tests, simulations, and single-process deployments use.
func (cp *ControlPlane) AttachLocal(dp *DataPlane) error {
	return cp.ctl.Register(&control.LocalConn{Stg: dp.stg})
}

// DetachLocal removes a locally attached data plane from the registry
// (job completion); it reports whether the stage was registered.
func (cp *ControlPlane) DetachLocal(dp *DataPlane) bool {
	return cp.ctl.Deregister(dp.stg.Info().StageID)
}

// Serve starts the registration endpoint remote data planes dial.
func (cp *ControlPlane) Serve(addr string) (string, error) {
	srv, err := cp.ctl.Serve(addr)
	if err != nil {
		return "", err
	}
	cp.srv = srv
	return srv.Addr(), nil
}

// SetReservation records a job's reserved/priority rate.
func (cp *ControlPlane) SetReservation(jobID string, rate float64) {
	cp.ctl.SetReservation(jobID, rate)
}

// ApplyRuleToJob installs a rule on every stage of a job, splitting the
// rate across the job's stages.
func (cp *ControlPlane) ApplyRuleToJob(jobID string, r Rule) error {
	return cp.ctl.ApplyRuleToJob(jobID, r)
}

// ApplyRuleToJobs installs a rule across a group of jobs.
func (cp *ControlPlane) ApplyRuleToJobs(jobIDs []string, r Rule) error {
	return cp.ctl.ApplyRuleToJobs(jobIDs, r)
}

// ApplyRuleCluster installs a rule on every registered stage.
func (cp *ControlPlane) ApplyRuleCluster(r Rule) error {
	return cp.ctl.ApplyRuleCluster(r)
}

// RunOnce executes one feedback-loop iteration and returns the per-job
// allocation (nil without an algorithm).
func (cp *ControlPlane) RunOnce() map[string]float64 { return cp.ctl.RunOnce() }

// Run starts the feedback loop at the given interval; Stop halts it.
func (cp *ControlPlane) Run(interval time.Duration) { cp.ctl.Run(interval) }

// ServeMonitor starts an HTTP observability endpoint (JSON under /api/*,
// a text dashboard at /) and returns its address.
func (cp *ControlPlane) ServeMonitor(addr string) (string, error) {
	mon, err := monitor.Serve(addr, cp.ctl)
	if err != nil {
		return "", err
	}
	cp.mon = mon
	return mon.Addr(), nil
}

// Stop halts the feedback loop and any served endpoints.
func (cp *ControlPlane) Stop() {
	cp.ctl.Stop()
	if cp.srv != nil {
		cp.srv.Close()
		cp.srv = nil
	}
	if cp.mon != nil {
		// Shutdown path: a monitor close error has no recovery.
		_ = cp.mon.Close()
		cp.mon = nil
	}
}

// Jobs lists the job IDs with registered stages.
func (cp *ControlPlane) Jobs() []string { return cp.ctl.Jobs() }

// Stages lists the registered stage identities.
func (cp *ControlPlane) Stages() []StageInfo { return cp.ctl.Stages() }

// Collect aggregates statistics per job (feedback-loop step 1).
func (cp *ControlPlane) Collect() []JobSnapshot { return cp.ctl.CollectAll() }

// LastAllocation returns the most recent per-job allocation.
func (cp *ControlPlane) LastAllocation() map[string]float64 { return cp.ctl.LastAllocation() }

// LastRound reports the most recent feedback round's wire accounting;
// ok is false before the first completed round.
func (cp *ControlPlane) LastRound() (rs RoundStats, ok bool) { return cp.ctl.LastRound() }
