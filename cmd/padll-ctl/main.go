// Command padll-ctl is the administrator CLI for a running data-plane
// stage: it inspects queue statistics and installs, retunes, or removes
// QoS rules over the stage's control RPC service.
//
// Usage:
//
//	padll-ctl -stage 127.0.0.1:7171 ping
//	padll-ctl -stage 127.0.0.1:7171 stats
//	padll-ctl -stage 127.0.0.1:7171 apply 'limit id:open-cap op:open rate:10k burst:500' \
//	    'limit id:stat-cap op:stat rate:50k'
//	padll-ctl -stage 127.0.0.1:7171 set-rate open-cap 25k
//	padll-ctl -stage 127.0.0.1:7171 remove open-cap
//	padll-ctl -stage 127.0.0.1:7171 mode passthrough
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"padll/internal/policy"
	"padll/internal/rpcio"
	"padll/internal/stage"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: padll-ctl -stage host:port <command> [args]
commands:
  ping                 probe the stage and print its identity
  stats                print per-queue statistics
  apply '<rule dsl>' [more rules...]
                       install or update rules; several rules land
                       atomically in one batched round trip
  set-rate <id> <rate> retune a rule's rate (k/m suffixes accepted)
  remove <id>          delete a rule
  mode <enforce|passthrough>`)
	os.Exit(2)
}

func main() {
	stageAddr := flag.String("stage", "", "stage control address (host:port)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if *stageAddr == "" || len(args) == 0 {
		usage()
	}

	h, err := rpcio.DialStage(*stageAddr)
	if err != nil {
		fatal(err)
	}
	defer h.Close()

	switch args[0] {
	case "ping":
		info, err := h.Ping()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("stage %s job=%s host=%s pid=%d user=%s\n",
			info.StageID, info.JobID, info.Hostname, info.PID, info.User)

	case "stats":
		st, err := h.Collect()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("stage %s (job %s): %d queues, %d passthrough requests\n",
			st.Info.StageID, st.Info.JobID, len(st.Queues), st.Passthrough)
		for _, q := range st.Queues {
			limit := "unlimited"
			if q.Limit >= 0 {
				limit = fmt.Sprintf("%.0f/s", q.Limit)
			}
			fmt.Printf("  %-16s limit=%-10s demand=%8.0f/s throughput=%8.0f/s total=%d waiting=%d wait-p50=%s wait-p99=%s\n",
				q.RuleID, limit, q.DemandRate, q.ThroughputRate, q.Total, q.Waiting,
				waitDur(q.WaitP50), waitDur(q.WaitP99))
		}

	case "apply":
		if len(args) < 2 {
			usage()
		}
		// Parse everything before touching the stage, then ship all the
		// rules in one Stage.Batch round trip: either every rule lands or
		// none does, so a typo in rule three can't leave one and two live.
		ops := make([]rpcio.StageOp, 0, len(args)-1)
		rules := make([]policy.Rule, 0, len(args)-1)
		for _, dsl := range args[1:] {
			rule, err := policy.Parse(dsl)
			if err != nil {
				fatal(err)
			}
			ops = append(ops, rpcio.StageOp{Kind: rpcio.OpApplyRule, Rule: rule})
			rules = append(rules, rule)
		}
		if _, _, err := h.ExecBatch(ops, false); err != nil {
			fatal(err)
		}
		for _, rule := range rules {
			fmt.Println("applied", rule.String())
		}

	case "set-rate":
		if len(args) != 3 {
			usage()
		}
		// Reuse the DSL's rate parser for k/m suffixes.
		rule, err := policy.Parse("limit id:tmp rate:" + args[2])
		if err != nil {
			fatal(err)
		}
		found, err := h.SetRate(args[1], rule.Rate)
		if err != nil {
			fatal(err)
		}
		if !found {
			fatal(fmt.Errorf("no rule %q on the stage", args[1]))
		}
		fmt.Printf("rule %s -> %.0f/s\n", args[1], rule.Rate)

	case "remove":
		if len(args) != 2 {
			usage()
		}
		removed, err := h.RemoveRule(args[1])
		if err != nil {
			fatal(err)
		}
		if !removed {
			fatal(fmt.Errorf("no rule %q on the stage", args[1]))
		}
		fmt.Println("removed", args[1])

	case "mode":
		if len(args) != 2 {
			usage()
		}
		var m stage.Mode
		switch strings.ToLower(args[1]) {
		case "enforce":
			m = stage.Enforce
		case "passthrough":
			m = stage.Passthrough
		default:
			usage()
		}
		if err := h.SetMode(m); err != nil {
			fatal(err)
		}
		fmt.Println("mode set to", args[1])

	default:
		usage()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "padll-ctl:", err)
	os.Exit(1)
}

// waitDur renders a wait percentile (seconds) compactly; queues that
// never blocked show "-" instead of a zero duration.
func waitDur(sec float64) string {
	if sec <= 0 {
		return "-"
	}
	return time.Duration(sec * float64(time.Second)).Round(time.Microsecond).String()
}
