// Command padll-tracegen synthesizes ABCI-like metadata traces (§II-A of
// the PADLL paper) and writes them as CSV, for use with padll-replayer
// and offline analysis.
//
// Usage:
//
//	padll-tracegen -seed 2022 -days 30 -out trace.csv
//	padll-tracegen -days 1 -mdt -scale 0.5 | head
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"padll/internal/trace"
)

func main() {
	var (
		seed  = flag.Int64("seed", 2022, "generator seed (deterministic)")
		days  = flag.Float64("days", 30, "trace duration in days")
		mdt   = flag.Bool("mdt", false, "emit a single-MDT trace (1/6 of the load)")
		scale = flag.Float64("scale", 1.0, "rate scale applied after generation")
		out   = flag.String("out", "", "output file (default stdout)")
		stats = flag.Bool("stats", false, "print summary statistics to stderr")
	)
	flag.Parse()

	cfg := trace.PFSAConfig(*seed)
	cfg.Duration = time.Duration(*days * 24 * float64(time.Hour))
	tr := trace.Generate(cfg)
	if *mdt {
		tr = trace.SingleMDT(tr)
	}
	if *scale != 1.0 {
		tr = tr.Scale(*scale)
	}

	if *stats {
		st := trace.Analyze(tr)
		fmt.Fprintf(os.Stderr, "samples=%d mean=%.1fK peak=%.1fK min=%.1fK top4=%.1f%% sustained>400K=%dmin\n",
			st.Samples, st.MeanTotal/1000, st.PeakTotal/1000, st.MinTotal/1000,
			st.Top4Share*100, st.SustainedOver400K)
	}

	w := os.Stdout
	var f *os.File
	if *out != "" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		fatal(err)
	}
	// Close explicitly and check: write errors (full disk, quota) can
	// surface only at close time, and a trace silently truncated here
	// would corrupt every replay built on it.
	if f != nil {
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "padll-tracegen:", err)
	os.Exit(1)
}
