// Command padll-ior runs the IOR-like synthetic data benchmark (the
// paper's data-workload generator, §IV) against the simulated Lustre
// parallel file system, optionally through a PADLL data plane so data
// operations can be rate limited.
//
// Usage:
//
//	padll-ior -tasks 8 -transfer 1m -block 16m -segments 4 -mode writeread
//	padll-ior -tasks 4 -rule 'limit id:data class:data rate:5k'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"padll"
	"padll/internal/clock"
	"padll/internal/ior"
	"padll/internal/pfs"
	"padll/internal/posix"
)

// parseSize parses values like 64k, 1m, 8m into bytes.
func parseSize(s string) (int64, error) {
	mult := int64(1)
	s = strings.ToLower(strings.TrimSpace(s))
	switch {
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	var v int64
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}

func main() {
	var (
		tasks    = flag.Int("tasks", 4, "parallel ranks")
		transfer = flag.String("transfer", "256k", "transfer size per call")
		block    = flag.String("block", "8m", "block size per task per segment")
		segments = flag.Int("segments", 2, "segment count")
		mode     = flag.String("mode", "writeread", "write | read | writeread")
		fpp      = flag.Bool("file-per-process", false, "one file per rank instead of a shared file")
		random   = flag.Bool("random", false, "random transfer order")
		ruleFlag = flag.String("rule", "", "QoS rule installed on the data plane (DSL)")
		ostBW    = flag.String("ost-bandwidth", "1g", "per-OST bandwidth")
		backFlag = flag.String("backend", "sim", "sim | os — simulated PFS or a real OS directory")
		osRoot   = flag.String("os-root", "", "host directory for -backend=os (a temp dir when empty)")
	)
	flag.Parse()

	tSize, err := parseSize(*transfer)
	if err != nil {
		fatal(err)
	}
	bSize, err := parseSize(*block)
	if err != nil {
		fatal(err)
	}
	bw, err := parseSize(*ostBW)
	if err != nil {
		fatal(err)
	}
	var m ior.Mode
	switch *mode {
	case "write":
		m = ior.WriteOnly
	case "read":
		m = ior.ReadOnly
	case "writeread":
		m = ior.WriteThenRead
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	clk := clock.NewReal()
	var backend posix.FileSystem
	var simBackend *pfs.PFS
	switch *backFlag {
	case "sim":
		simBackend = pfs.New(clk, pfs.Config{OSTBandwidth: float64(bw)})
		cfg := simBackend.Config()
		fmt.Printf("simulated PFS: %d MDS / %d MDT / %d OST, %s/s per OST\n",
			cfg.NumMDS, cfg.NumMDT, cfg.NumOST, *ostBW)
		backend = simBackend
	case "os":
		root := *osRoot
		if root == "" {
			tmp, err := os.MkdirTemp("", "padll-ior-*")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(tmp)
			root = tmp
		}
		osBackend, err := padll.NewOSBackend(root)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("OS backend rooted at %s (real kernel I/O)\n", root)
		backend = osBackend
	default:
		fatal(fmt.Errorf("unknown backend %q (want sim or os)", *backFlag))
	}

	var client *posix.Client
	if *ruleFlag != "" {
		hostname, _ := os.Hostname()
		dp, err := padll.NewDataPlane(
			padll.JobInfo{JobID: "ior-job", PID: os.Getpid(), Hostname: hostname},
			padll.MountPFS("/", backend))
		if err != nil {
			fatal(err)
		}
		defer dp.Close()
		rule, err := padll.ParseRule(*ruleFlag)
		if err != nil {
			fatal(err)
		}
		dp.ApplyRule(rule)
		fmt.Println("installed", rule.String())
		client = dp.Client()
	} else {
		client = posix.NewClient(backend)
	}

	res, err := ior.Run(context.Background(), ior.Config{
		Client:         client,
		Dir:            "/ior",
		NumTasks:       *tasks,
		TransferSize:   tSize,
		BlockSize:      bSize,
		SegmentCount:   *segments,
		Mode:           m,
		FilePerProcess: *fpp,
		Random:         *random,
		Clock:          clk,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("elapsed %v, %d errors\n", res.Elapsed.Round(1e6), res.Errors)
	if res.WriteOps > 0 {
		fmt.Printf("  write: %d ops, %.1f MiB, %.1f MiB/s, %.0f ops/s\n",
			res.WriteOps, float64(res.BytesWritten)/(1<<20),
			res.WriteBandwidth()/(1<<20), float64(res.WriteOps)/res.Elapsed.Seconds())
	}
	if res.ReadOps > 0 {
		fmt.Printf("  read:  %d ops, %.1f MiB, %.1f MiB/s, %.0f ops/s\n",
			res.ReadOps, float64(res.BytesRead)/(1<<20),
			res.ReadBandwidth()/(1<<20), float64(res.ReadOps)/res.Elapsed.Seconds())
	}
	if simBackend != nil {
		st := simBackend.Stats()
		fmt.Printf("  PFS: %d metadata ops, %.1f MiB written, %.1f MiB read\n",
			st.MetadataOps, float64(st.BytesWritten)/(1<<20), float64(st.BytesRead)/(1<<20))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "padll-ior:", err)
	os.Exit(1)
}
