package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, m, ok := parseBenchLine("BenchmarkControllerRunOnce64         \t    1065\t   3607304 ns/op\t        64.00 rpcs/round\t      5376 wireB/round\t  480197 B/op\t    2023 allocs/op")
	if !ok {
		t.Fatal("failed to parse a canonical benchmark line")
	}
	if name != "BenchmarkControllerRunOnce64" {
		t.Errorf("name = %q", name)
	}
	for unit, want := range map[string]float64{
		"ns/op": 3607304, "rpcs/round": 64, "wireB/round": 5376, "B/op": 480197, "allocs/op": 2023,
	} {
		if m[unit] != want {
			t.Errorf("%s = %v, want %v", unit, m[unit], want)
		}
	}
	for _, bad := range []string{
		"ok  \tpadll/internal/control\t30.812s",
		"BenchmarkNoResult",
		"Benchmark only words here no numbers",
		"",
	} {
		if _, _, ok := parseBenchLine(bad); ok {
			t.Errorf("parseBenchLine accepted %q", bad)
		}
	}
}

// stream builds a test2json capture with each benchmark's result split
// across two output events, exactly as test2json emits them.
func stream(t *testing.T, results map[string]string) string {
	t.Helper()
	var b strings.Builder
	for name, tail := range results {
		for _, out := range []string{name + " \t", tail + "\n"} {
			line, err := json.Marshal(event{Action: "output", Package: "p", Output: out})
			if err != nil {
				t.Fatal(err)
			}
			b.Write(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func TestRenderStitchesAndRecords(t *testing.T) {
	in := stream(t, map[string]string{
		"BenchmarkA": "  100\t  2000 ns/op\t  512 wireB/round",
		"BenchmarkB": "  100\t  3000 ns/op",
	})
	var out strings.Builder
	got := map[string]map[string]float64{}
	n, err := render(strings.NewReader(in), &out, nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("rendered %d benchmarks, want 2", n)
	}
	if got["BenchmarkA"]["wireB/round"] != 512 || got["BenchmarkB"]["ns/op"] != 3000 {
		t.Errorf("recorded metrics wrong: %v", got)
	}
	if !strings.Contains(out.String(), "BenchmarkA \t  100\t  2000 ns/op") {
		t.Errorf("human output lost the stitched line:\n%s", out.String())
	}
}

func TestRenderKeepsFastestOfRepeatedRuns(t *testing.T) {
	// -count=N repeats each benchmark; the recorded entry must be the
	// fastest run (contention noise only ever inflates ns/op).
	var b strings.Builder
	for _, tail := range []string{"  100\t  3000 ns/op\t  500 wireB/round", "  100\t  2000 ns/op\t  510 wireB/round", "  100\t  2500 ns/op\t  505 wireB/round"} {
		for _, out := range []string{"BenchmarkRepeat \t", tail + "\n"} {
			line, err := json.Marshal(event{Action: "output", Package: "p", Output: out})
			if err != nil {
				t.Fatal(err)
			}
			b.Write(line)
			b.WriteByte('\n')
		}
	}
	got := map[string]map[string]float64{}
	if _, err := render(strings.NewReader(b.String()), io.Discard, nil, got); err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkRepeat"]["ns/op"] != 2000 || got["BenchmarkRepeat"]["wireB/round"] != 510 {
		t.Errorf("recorded %v, want the fastest run (2000 ns/op, 510 wireB/round)", got["BenchmarkRepeat"])
	}
}

func TestDiffFlagsRegressionsOnly(t *testing.T) {
	baseline := stream(t, map[string]string{
		"BenchmarkFast":   "  100\t  1000 ns/op\t  100 wireB/round",
		"BenchmarkSteady": "  100\t  5000 ns/op\t  200 wireB/round",
		"BenchmarkGone":   "  100\t  9000 ns/op",
	})
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}

	// Within tolerance everywhere (10% worse ns/op on Steady, big win on
	// Fast, Gone not re-run): zero regressions.
	fresh := map[string]map[string]float64{
		"BenchmarkFast":   {"ns/op": 500, "wireB/round": 90},
		"BenchmarkSteady": {"ns/op": 5500, "wireB/round": 200},
		"BenchmarkNew":    {"ns/op": 1}, // no baseline: ignored
	}
	if n, err := diff(path, fresh, 0.15); err != nil || n != 0 {
		t.Errorf("diff = %d regressions, err %v; want 0, nil", n, err)
	}

	// Blow the budget on one ns/op and one wireB/round.
	fresh["BenchmarkSteady"] = map[string]float64{"ns/op": 6000, "wireB/round": 200}
	fresh["BenchmarkFast"] = map[string]float64{"ns/op": 500, "wireB/round": 150}
	if n, err := diff(path, fresh, 0.15); err != nil || n != 2 {
		t.Errorf("diff = %d regressions, err %v; want 2, nil", n, err)
	}

	// Nothing comparable must be an error, not a silent pass.
	if _, err := diff(path, map[string]map[string]float64{}, 0.15); err == nil {
		t.Error("diff with no overlap passed; want an error")
	}
}
