package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, m, ok := parseBenchLine("BenchmarkControllerRunOnce64         \t    1065\t   3607304 ns/op\t        64.00 rpcs/round\t      5376 wireB/round\t  480197 B/op\t    2023 allocs/op")
	if !ok {
		t.Fatal("failed to parse a canonical benchmark line")
	}
	if name != "BenchmarkControllerRunOnce64" {
		t.Errorf("name = %q", name)
	}
	for unit, want := range map[string]float64{
		"ns/op": 3607304, "rpcs/round": 64, "wireB/round": 5376, "B/op": 480197, "allocs/op": 2023,
	} {
		if m[unit] != want {
			t.Errorf("%s = %v, want %v", unit, m[unit], want)
		}
	}
	for _, bad := range []string{
		"ok  \tpadll/internal/control\t30.812s",
		"BenchmarkNoResult",
		"Benchmark only words here no numbers",
		"",
	} {
		if _, _, ok := parseBenchLine(bad); ok {
			t.Errorf("parseBenchLine accepted %q", bad)
		}
	}
}

// stream builds a test2json capture with each benchmark's result split
// across two output events, exactly as test2json emits them.
func stream(t *testing.T, results map[string]string) string {
	t.Helper()
	var b strings.Builder
	for name, tail := range results {
		for _, out := range []string{name + " \t", tail + "\n"} {
			line, err := json.Marshal(event{Action: "output", Package: "p", Output: out})
			if err != nil {
				t.Fatal(err)
			}
			b.Write(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func TestRenderStitchesAndRecords(t *testing.T) {
	in := stream(t, map[string]string{
		"BenchmarkA": "  100\t  2000 ns/op\t  512 wireB/round",
		"BenchmarkB": "  100\t  3000 ns/op",
	})
	var out strings.Builder
	got := map[string]map[string]float64{}
	n, err := render(strings.NewReader(in), &out, nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("rendered %d benchmarks, want 2", n)
	}
	if got["BenchmarkA"]["wireB/round"] != 512 || got["BenchmarkB"]["ns/op"] != 3000 {
		t.Errorf("recorded metrics wrong: %v", got)
	}
	if !strings.Contains(out.String(), "BenchmarkA \t  100\t  2000 ns/op") {
		t.Errorf("human output lost the stitched line:\n%s", out.String())
	}
}

func TestRenderKeepsFastestOfRepeatedRuns(t *testing.T) {
	// -count=N repeats each benchmark; the recorded entry must be the
	// fastest run (contention noise only ever inflates ns/op).
	var b strings.Builder
	for _, tail := range []string{"  100\t  3000 ns/op\t  500 wireB/round", "  100\t  2000 ns/op\t  510 wireB/round", "  100\t  2500 ns/op\t  505 wireB/round"} {
		for _, out := range []string{"BenchmarkRepeat \t", tail + "\n"} {
			line, err := json.Marshal(event{Action: "output", Package: "p", Output: out})
			if err != nil {
				t.Fatal(err)
			}
			b.Write(line)
			b.WriteByte('\n')
		}
	}
	got := map[string]map[string]float64{}
	if _, err := render(strings.NewReader(b.String()), io.Discard, nil, got); err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkRepeat"]["ns/op"] != 2000 || got["BenchmarkRepeat"]["wireB/round"] != 510 {
		t.Errorf("recorded %v, want the fastest run (2000 ns/op, 510 wireB/round)", got["BenchmarkRepeat"])
	}
	if got["BenchmarkRepeat"][nsMaxKey] != 3000 {
		t.Errorf("recorded %v ns/op.max, want the slowest sample (3000) for spread gating", got["BenchmarkRepeat"][nsMaxKey])
	}
}

func TestDiffFlagsRegressionsOnly(t *testing.T) {
	baseline := stream(t, map[string]string{
		"BenchmarkFast":   "  100\t  1000 ns/op\t  100 wireB/round",
		"BenchmarkSteady": "  100\t  5000 ns/op\t  200 wireB/round",
		"BenchmarkGone":   "  100\t  9000 ns/op",
	})
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}

	// Within tolerance everywhere (10% worse ns/op on Steady, big win on
	// Fast, Gone not re-run): zero regressions.
	fresh := map[string]map[string]float64{
		"BenchmarkFast":   {"ns/op": 500, "wireB/round": 90},
		"BenchmarkSteady": {"ns/op": 5500, "wireB/round": 200},
		"BenchmarkNew":    {"ns/op": 1}, // no baseline: ignored
	}
	if n, err := diff(path, fresh, 0.15, 0.15); err != nil || n != 0 {
		t.Errorf("diff = %d regressions, err %v; want 0, nil", n, err)
	}

	// Blow the budget on one ns/op and one wireB/round.
	fresh["BenchmarkSteady"] = map[string]float64{"ns/op": 6000, "wireB/round": 200}
	fresh["BenchmarkFast"] = map[string]float64{"ns/op": 500, "wireB/round": 150}
	if n, err := diff(path, fresh, 0.15, 0.15); err != nil || n != 2 {
		t.Errorf("diff = %d regressions, err %v; want 2, nil", n, err)
	}

	// Nothing comparable must be an error, not a silent pass.
	if _, err := diff(path, map[string]map[string]float64{}, 0.15, 0.15); err == nil {
		t.Error("diff with no overlap passed; want an error")
	}
}

// TestDiffNsNoiseFloor pins the absolute slack on ns/op: a sub-10ns
// wobble on a single-digit-ns benchmark is timer noise and must not
// trip the gate, while a delta past the floor still does — and the
// floor never applies to the deterministic allocs/op unit.
func TestDiffNsNoiseFloor(t *testing.T) {
	baseline := stream(t, map[string]string{
		"BenchmarkTiny": "  100\t  8 ns/op\t  0 allocs/op",
	})
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}

	// +30% relative but only +2.4ns absolute: inside the floor.
	fresh := map[string]map[string]float64{
		"BenchmarkTiny": {"ns/op": 10.4, "allocs/op": 0},
	}
	if n, err := diff(path, fresh, 0.15, 0.15); err != nil || n != 0 {
		t.Errorf("diff = %d regressions, err %v; want 0 (2.4ns wobble is noise)", n, err)
	}

	// +12ns absolute: past the floor, a real slowdown.
	fresh["BenchmarkTiny"] = map[string]float64{"ns/op": 20, "allocs/op": 0}
	if n, err := diff(path, fresh, 0.15, 0.15); err != nil || n != 1 {
		t.Errorf("diff = %d regressions, err %v; want 1 (12ns past the floor)", n, err)
	}

	// One new allocation on a zero-alloc path must trip regardless of
	// how small the benchmark is — but a zero baseline is skipped, so
	// seed the baseline at one alloc and regress to two.
	baseline = stream(t, map[string]string{
		"BenchmarkTiny": "  100\t  8 ns/op\t  1 allocs/op",
	})
	if err := os.WriteFile(path, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh["BenchmarkTiny"] = map[string]float64{"ns/op": 8, "allocs/op": 2}
	if n, err := diff(path, fresh, 0.15, 0.15); err != nil || n != 1 {
		t.Errorf("diff = %d regressions, err %v; want 1 (allocs/op has no noise floor)", n, err)
	}
}

// TestDiffSpreadWidensNsTolerance pins the variance-aware gate: a
// wall-clock benchmark whose own -count=N samples swing 30% in-window
// cannot fail on a 20% min-to-min delta, while the same delta on a
// tight-spread benchmark still trips — and spread never loosens the
// deterministic units.
func TestDiffSpreadWidensNsTolerance(t *testing.T) {
	baseline := stream(t, map[string]string{
		"BenchmarkFleet": "  100\t  1000000 ns/op\t  200 wireB/round",
	})
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}

	// +20% min-to-min, but the fresh samples spread 1.2M..1.56M (30%):
	// inside the benchmark's own variance, not a regression.
	fresh := map[string]map[string]float64{
		"BenchmarkFleet": {"ns/op": 1200000, nsMaxKey: 1560000, "wireB/round": 200},
	}
	if n, err := diff(path, fresh, 0.15, 0.15); err != nil || n != 0 {
		t.Errorf("diff = %d regressions, err %v; want 0 (delta within measured spread)", n, err)
	}

	// Same +20% with a tight 2% spread: a real slowdown.
	fresh["BenchmarkFleet"] = map[string]float64{"ns/op": 1200000, nsMaxKey: 1224000, "wireB/round": 200}
	if n, err := diff(path, fresh, 0.15, 0.15); err != nil || n != 1 {
		t.Errorf("diff = %d regressions, err %v; want 1 (tight spread keeps the gate)", n, err)
	}

	// Spread must not excuse wireB/round: bytes on the wire are
	// deterministic whatever the scheduler does.
	fresh["BenchmarkFleet"] = map[string]float64{"ns/op": 1000000, nsMaxKey: 2000000, "wireB/round": 300}
	if n, err := diff(path, fresh, 0.15, 0.15); err != nil || n != 1 {
		t.Errorf("diff = %d regressions, err %v; want 1 (wire bytes gated strictly)", n, err)
	}
}

// TestRatioGates pins the same-run ratio mechanism: parse errors are
// loud, limits gate the fresh run's own ns/op quotients, and a missing
// benchmark is an error rather than a silently dissolved gate.
func TestRatioGates(t *testing.T) {
	specs, err := parseRatios("BenchA/BenchB<=1.5, BenchC/BenchB <= 2")
	if err != nil || len(specs) != 2 {
		t.Fatalf("parseRatios = %v, %v; want 2 specs", specs, err)
	}
	if specs[0] != (ratioSpec{"BenchA", "BenchB", 1.5}) {
		t.Errorf("spec[0] = %+v", specs[0])
	}
	for _, bad := range []string{"BenchA<=1.5", "BenchA/BenchB", "A/B<=zero", "/B<=1", "A/B<=-1"} {
		if _, err := parseRatios(bad); err == nil {
			t.Errorf("parseRatios(%q) accepted", bad)
		}
	}

	fresh := map[string]map[string]float64{
		"BenchA": {"ns/op": 120},
		"BenchB": {"ns/op": 100},
		"BenchC": {"ns/op": 250},
	}
	// A/B = 1.2 within 1.5; C/B = 2.5 past 2.
	if n, err := gateRatios(specs, fresh); err != nil || n != 1 {
		t.Errorf("gateRatios = %d exceeded, err %v; want 1", n, err)
	}
	delete(fresh, "BenchC")
	if _, err := gateRatios(specs, fresh); err == nil {
		t.Error("gateRatios with a missing benchmark passed; want an error")
	}
}
