// Command padll-benchfmt renders a `go test -json` benchmark event
// stream back into human-readable text. `make bench` pipes through it so
// the raw JSON can be captured (BENCH_stage.json, BENCH_control.json)
// for machine diffing while the terminal still shows the familiar
// benchmark table.
//
// With -diff it also compares the fresh stream against a committed
// baseline capture and exits non-zero when ns/op or wireB/round regress
// beyond the tolerance, which is how `make ci` locks in wire-protocol
// wins.
//
// Usage:
//
//	go test -run='^$' -bench=. -json ./... | padll-benchfmt
//	go test -run='^$' -bench=. -json ./... | padll-benchfmt -raw BENCH_control.json
//	go test -run='^$' -bench=. -json ./... | padll-benchfmt -diff BENCH_control.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// event is the subset of test2json's record that matters here.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// diffUnits are the measurements -diff guards. ns/op is the round
// latency win; wireB/round is the codec's bytes-on-the-wire win. The
// rest (B/op, allocs/op, rpcs/round) stay informational: they are
// either covered transitively or legitimately change shape.
var diffUnits = []string{"ns/op", "wireB/round"}

// parseBenchLine splits a complete benchmark result line into its name
// and unit measurements: "BenchmarkX  1065  3607304 ns/op  5376 wireB/round ..."
func parseBenchLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	metrics := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		metrics[fields[i+1]] = v
	}
	if _, ok := metrics["ns/op"]; !ok {
		return "", nil, false
	}
	return fields[0], metrics, true
}

// render consumes a test2json stream, writing the human-readable
// benchmark table to out, copying the raw stream to raw (nil to skip),
// and recording parsed results into results (nil to skip). Returns the
// number of benchmark results seen.
func render(in io.Reader, out, raw io.Writer, results map[string]map[string]float64) (int, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	benches := 0
	pending := "" // benchmark name emitted without its result line yet
	record := func(line string) {
		benches++
		if results == nil {
			return
		}
		name, metrics, ok := parseBenchLine(line)
		if !ok {
			return
		}
		// With -count=N each benchmark reports N times; keep the fastest
		// run. Scheduler contention only ever inflates ns/op, so the
		// minimum is the best estimate of true cost — and what makes
		// -diff stable enough to gate CI on a busy machine.
		if prev, seen := results[name]; seen && prev["ns/op"] <= metrics["ns/op"] {
			return
		}
		results[name] = metrics
	}
	for sc.Scan() {
		line := sc.Bytes()
		if raw != nil {
			// Stream copy errors (disk full) surface at Close.
			_, _ = raw.Write(line)
			_, _ = raw.Write([]byte{'\n'})
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			// Pass non-JSON lines through untouched so plain-text input
			// (or interleaved tool noise) is never swallowed.
			fmt.Fprintln(out, string(line))
			continue
		}
		if ev.Action != "output" {
			continue
		}
		// test2json splits a benchmark result into two events: the name
		// (no trailing newline) and then the measurements. Stitch them.
		if pending != "" {
			whole := pending + strings.TrimRight(ev.Output, "\n")
			fmt.Fprintln(out, whole)
			pending = ""
			record(whole)
			continue
		}
		outLine := strings.TrimRight(ev.Output, "\n")
		switch {
		case strings.HasPrefix(outLine, "Benchmark") && !strings.HasSuffix(ev.Output, "\n"):
			pending = outLine
		case strings.HasPrefix(outLine, "Benchmark") && strings.Contains(outLine, "ns/op"):
			record(outLine)
			fmt.Fprintln(out, outLine)
		case strings.HasPrefix(outLine, "Benchmark"):
			// Bare RUN line (no measurements attached) — skip.
		case strings.HasPrefix(outLine, "goos:"),
			strings.HasPrefix(outLine, "goarch:"),
			strings.HasPrefix(outLine, "pkg:"),
			strings.HasPrefix(outLine, "cpu:"),
			strings.HasPrefix(outLine, "ok "),
			strings.HasPrefix(outLine, "FAIL"),
			strings.HasPrefix(outLine, "--- FAIL"),
			strings.HasPrefix(outLine, "panic:"):
			fmt.Fprintln(out, outLine)
		}
	}
	return benches, sc.Err()
}

// diff compares fresh results against a baseline capture and reports
// per-benchmark deltas on the guarded units. Returns the number of
// regressions beyond tolerance.
func diff(basePath string, fresh map[string]map[string]float64, tolerance float64) (int, error) {
	f, err := os.Open(basePath)
	if err != nil {
		return 0, err
	}
	// Read-only baseline: a close error has nothing to report.
	defer func() { _ = f.Close() }()
	base := map[string]map[string]float64{}
	if _, err := render(f, io.Discard, nil, base); err != nil {
		return 0, err
	}

	fmt.Printf("\ndiff vs %s (tolerance %.0f%%):\n", basePath, tolerance*100)
	regressions, compared := 0, 0
	for name, baseM := range base {
		freshM, ok := fresh[name]
		if !ok {
			continue // baseline benchmark not in this run (different package set)
		}
		for _, unit := range diffUnits {
			b, okB := baseM[unit]
			fr, okF := freshM[unit]
			if !okB || !okF || b == 0 {
				continue
			}
			compared++
			delta := (fr - b) / b
			verdict := "ok"
			if delta > tolerance {
				verdict = "REGRESSED"
				regressions++
			}
			fmt.Printf("  %-44s %-12s %14.0f -> %-14.0f %+7.1f%%  %s\n",
				name, unit, b, fr, delta*100, verdict)
		}
	}
	if compared == 0 {
		return 0, fmt.Errorf("no comparable benchmarks between this run and %s", basePath)
	}
	fmt.Printf("%d measurements compared, %d regressed\n", compared, regressions)
	return regressions, nil
}

func main() {
	os.Exit(run())
}

func run() (code int) {
	rawPath := flag.String("raw", "", "also copy the raw input stream to this file (replaces `| tee`)")
	diffPath := flag.String("diff", "", "compare against this baseline `go test -json` capture; exit non-zero on regression")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional regression per measurement in -diff mode")
	flag.Parse()

	var raw io.Writer
	if *rawPath != "" {
		f, err := os.Create(*rawPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "padll-benchfmt:", err)
			return 1
		}
		w := bufio.NewWriter(f)
		defer func() {
			// Flush-then-close: a full disk surfaces here, not silently.
			err := w.Flush()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "padll-benchfmt:", err)
				code = 1
			}
		}()
		raw = w
	}

	var fresh map[string]map[string]float64
	if *diffPath != "" {
		fresh = map[string]map[string]float64{}
	}
	benches, err := render(os.Stdin, os.Stdout, raw, fresh)
	if err != nil {
		fmt.Fprintln(os.Stderr, "padll-benchfmt:", err)
		return 1
	}
	fmt.Printf("\n%d benchmark results\n", benches)

	if *diffPath != "" {
		regressions, err := diff(*diffPath, fresh, *tolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, "padll-benchfmt:", err)
			return 1
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "padll-benchfmt: %d benchmark measurements regressed more than %.0f%%\n", regressions, *tolerance*100)
			return 1
		}
	}
	return 0
}
