// Command padll-benchfmt renders a `go test -json` benchmark event
// stream back into human-readable text. `make bench` pipes through it so
// the raw JSON can be captured (BENCH_stage.json, BENCH_control.json)
// for machine diffing while the terminal still shows the familiar
// benchmark table.
//
// Usage:
//
//	go test -run='^$' -bench=. -json ./... | padll-benchfmt
//	go test -run='^$' -bench=. -json ./... | padll-benchfmt -raw BENCH_control.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// event is the subset of test2json's record that matters here.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

func main() {
	rawPath := flag.String("raw", "", "also copy the raw input stream to this file (replaces `| tee`)")
	flag.Parse()

	var raw io.Writer
	if *rawPath != "" {
		f, err := os.Create(*rawPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "padll-benchfmt:", err)
			os.Exit(1)
		}
		w := bufio.NewWriter(f)
		defer func() {
			// Flush-then-close: a full disk surfaces here, not silently.
			err := w.Flush()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "padll-benchfmt:", err)
				os.Exit(1)
			}
		}()
		raw = w
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	benches := 0
	pending := "" // benchmark name emitted without its result line yet
	for sc.Scan() {
		line := sc.Bytes()
		if raw != nil {
			// Stream copy errors (disk full) surface at Close.
			_, _ = raw.Write(line)
			_, _ = raw.Write([]byte{'\n'})
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			// Pass non-JSON lines through untouched so plain-text input
			// (or interleaved tool noise) is never swallowed.
			fmt.Println(string(line))
			continue
		}
		if ev.Action != "output" {
			continue
		}
		// test2json splits a benchmark result into two events: the name
		// (no trailing newline) and then the measurements. Stitch them.
		if pending != "" {
			fmt.Println(pending + strings.TrimRight(ev.Output, "\n"))
			pending = ""
			benches++
			continue
		}
		out := strings.TrimRight(ev.Output, "\n")
		switch {
		case strings.HasPrefix(out, "Benchmark") && !strings.HasSuffix(ev.Output, "\n"):
			pending = out
		case strings.HasPrefix(out, "Benchmark") && strings.Contains(out, "ns/op"):
			benches++
			fmt.Println(out)
		case strings.HasPrefix(out, "Benchmark"):
			// Bare RUN line (no measurements attached) — skip.
		case strings.HasPrefix(out, "goos:"),
			strings.HasPrefix(out, "goarch:"),
			strings.HasPrefix(out, "pkg:"),
			strings.HasPrefix(out, "cpu:"),
			strings.HasPrefix(out, "ok "),
			strings.HasPrefix(out, "FAIL"),
			strings.HasPrefix(out, "--- FAIL"),
			strings.HasPrefix(out, "panic:"):
			fmt.Println(out)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "padll-benchfmt:", err)
		os.Exit(1)
	}
	fmt.Printf("\n%d benchmark results\n", benches)
}
