// Command padll-benchfmt renders a `go test -json` benchmark event
// stream back into human-readable text. `make bench` pipes through it so
// the raw JSON can be captured (BENCH_stage.json, BENCH_control.json)
// for machine diffing while the terminal still shows the familiar
// benchmark table.
//
// With -diff it also compares the fresh stream against a committed
// baseline capture and exits non-zero when ns/op, allocs/op or
// wireB/round regress beyond the tolerance (-ns-tolerance loosens the
// wall-clock unit independently of the deterministic ones), and -ratio
// additionally gates same-run ns/op quotients — e.g. bridged vs direct
// walk cost — which host-speed drift cancels out of. This is how
// `make ci` locks in the wire-protocol and alloc-free hot-path wins.
//
// Usage:
//
//	go test -run='^$' -bench=. -json ./... | padll-benchfmt
//	go test -run='^$' -bench=. -json ./... | padll-benchfmt -raw BENCH_control.json
//	go test -run='^$' -bench=. -json ./... | padll-benchfmt -diff BENCH_control.json
//	go test -run='^$' -bench=. -json ./... | padll-benchfmt -diff BENCH_stage.json \
//	    -ns-tolerance 0.5 -ratio 'BenchmarkOSBridgeStat-4/BenchmarkOSDirectStat-4<=1.6'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// event is the subset of test2json's record that matters here.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// diffUnits are the measurements -diff guards. ns/op is the round
// latency win; wireB/round is the codec's bytes-on-the-wire win;
// allocs/op locks in the alloc-free request path (it is deterministic,
// so even a one-allocation regression on a small count trips the
// gate). The rest (B/op, rpcs/round) stay informational: they are
// covered transitively or legitimately change shape.
var diffUnits = []string{"ns/op", "wireB/round", "allocs/op"}

// nsNoiseFloor widens the ns/op tolerance to an absolute slack of this
// many nanoseconds: on single-digit-ns benchmarks, timer granularity
// and frequency scaling routinely move the minimum-of-N estimate by
// 1-3 ns, which is far past 15% relative but meaningless. Any real
// regression on those paths (an allocation, a lock) costs tens of ns
// and still trips the gate; benchmarks slower than ~67 ns are
// unaffected because 15% of them already exceeds the floor.
const nsNoiseFloor = 10.0

// nsMaxKey is the synthetic unit under which render records the
// SLOWEST ns/op sample of a -count=N repetition, alongside the fastest
// one the gate compares. The in-window spread between them is the
// benchmark's own measured run-to-run variance, and diff refuses to
// gate ns/op tighter than that: the fleet benchmarks measure
// wall-clock rounds over live sockets, where scheduler steal on a
// shared box moves even a minimum-of-three by more than 15% — a fixed
// relative gate there is noise, not signal. CPU-bound hot-path
// benchmarks have near-zero spread and stay tightly gated, as do the
// deterministic allocs/op and wireB/round units.
const nsMaxKey = "ns/op.max"

// nsSpread is a measurement's observed in-window variance: the
// fractional gap between its slowest and fastest -count=N samples.
func nsSpread(m map[string]float64) float64 {
	mx, ok := m[nsMaxKey]
	if !ok || m["ns/op"] == 0 {
		return 0
	}
	return (mx - m["ns/op"]) / m["ns/op"]
}

// ratioSpec is one same-run ratio gate: the fresh run's ns/op for num
// divided by its ns/op for den must stay at or below limit. Both sides
// come from the same capture window, so the gate is immune to the
// cross-window host-speed drift that makes absolute ns/op comparisons
// loose — it pins relative claims like "the bridged walk costs at most
// K× the direct one" tightly even on a noisy box.
type ratioSpec struct {
	num, den string
	limit    float64
}

// parseRatios parses a comma-separated list of "num/den<=limit" specs.
func parseRatios(s string) ([]ratioSpec, error) {
	if s == "" {
		return nil, nil
	}
	var specs []ratioSpec
	for _, part := range strings.Split(s, ",") {
		names, limitStr, ok := strings.Cut(part, "<=")
		if !ok {
			return nil, fmt.Errorf("ratio %q: want num/den<=limit", part)
		}
		num, den, ok := strings.Cut(names, "/")
		if !ok || strings.TrimSpace(num) == "" || strings.TrimSpace(den) == "" {
			return nil, fmt.Errorf("ratio %q: want num/den<=limit", part)
		}
		limit, err := strconv.ParseFloat(strings.TrimSpace(limitStr), 64)
		if err != nil || limit <= 0 {
			return nil, fmt.Errorf("ratio %q: bad limit %q", part, limitStr)
		}
		specs = append(specs, ratioSpec{strings.TrimSpace(num), strings.TrimSpace(den), limit})
	}
	return specs, nil
}

// gateRatios checks each spec against the fresh results and returns
// the number of exceeded limits. A missing benchmark is an error, not
// a silent pass: a renamed benchmark must not dissolve its gate.
func gateRatios(specs []ratioSpec, fresh map[string]map[string]float64) (int, error) {
	exceeded := 0
	for _, sp := range specs {
		num, okN := fresh[sp.num]
		den, okD := fresh[sp.den]
		if !okN || !okD || den["ns/op"] == 0 {
			return 0, fmt.Errorf("ratio %s/%s: benchmark missing from this run", sp.num, sp.den)
		}
		r := num["ns/op"] / den["ns/op"]
		verdict := "ok"
		if r > sp.limit {
			verdict = "EXCEEDED"
			exceeded++
		}
		fmt.Printf("  ratio %s / %s = %.2fx (limit %.2fx)  %s\n", sp.num, sp.den, r, sp.limit, verdict)
	}
	return exceeded, nil
}

// parseBenchLine splits a complete benchmark result line into its name
// and unit measurements: "BenchmarkX  1065  3607304 ns/op  5376 wireB/round ..."
func parseBenchLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	metrics := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		metrics[fields[i+1]] = v
	}
	if _, ok := metrics["ns/op"]; !ok {
		return "", nil, false
	}
	return fields[0], metrics, true
}

// render consumes a test2json stream, writing the human-readable
// benchmark table to out, copying the raw stream to raw (nil to skip),
// and recording parsed results into results (nil to skip). Returns the
// number of benchmark results seen.
func render(in io.Reader, out, raw io.Writer, results map[string]map[string]float64) (int, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	benches := 0
	pending := "" // benchmark name emitted without its result line yet
	record := func(line string) {
		benches++
		if results == nil {
			return
		}
		name, metrics, ok := parseBenchLine(line)
		if !ok {
			return
		}
		// With -count=N each benchmark reports N times; keep the fastest
		// run. Scheduler contention only ever inflates ns/op, so the
		// minimum is the best estimate of true cost — and what makes
		// -diff stable enough to gate CI on a busy machine. The slowest
		// sample rides along under nsMaxKey so diff can see the
		// in-window spread.
		slowest := metrics["ns/op"]
		if prev, seen := results[name]; seen {
			if prev[nsMaxKey] > slowest {
				slowest = prev[nsMaxKey]
			}
			if prev["ns/op"] <= metrics["ns/op"] {
				prev[nsMaxKey] = slowest
				return
			}
		}
		metrics[nsMaxKey] = slowest
		results[name] = metrics
	}
	for sc.Scan() {
		line := sc.Bytes()
		if raw != nil {
			// Stream copy errors (disk full) surface at Close.
			_, _ = raw.Write(line)
			_, _ = raw.Write([]byte{'\n'})
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			// Pass non-JSON lines through untouched so plain-text input
			// (or interleaved tool noise) is never swallowed.
			fmt.Fprintln(out, string(line))
			continue
		}
		if ev.Action != "output" {
			continue
		}
		// test2json splits a benchmark result into two events: the name
		// (no trailing newline) and then the measurements. Stitch them.
		if pending != "" {
			whole := pending + strings.TrimRight(ev.Output, "\n")
			fmt.Fprintln(out, whole)
			pending = ""
			record(whole)
			continue
		}
		outLine := strings.TrimRight(ev.Output, "\n")
		switch {
		case strings.HasPrefix(outLine, "Benchmark") && !strings.HasSuffix(ev.Output, "\n"):
			pending = outLine
		case strings.HasPrefix(outLine, "Benchmark") && strings.Contains(outLine, "ns/op"):
			record(outLine)
			fmt.Fprintln(out, outLine)
		case strings.HasPrefix(outLine, "Benchmark"):
			// Bare RUN line (no measurements attached) — skip.
		case strings.HasPrefix(outLine, "goos:"),
			strings.HasPrefix(outLine, "goarch:"),
			strings.HasPrefix(outLine, "pkg:"),
			strings.HasPrefix(outLine, "cpu:"),
			strings.HasPrefix(outLine, "ok "),
			strings.HasPrefix(outLine, "FAIL"),
			strings.HasPrefix(outLine, "--- FAIL"),
			strings.HasPrefix(outLine, "panic:"):
			fmt.Fprintln(out, outLine)
		}
	}
	return benches, sc.Err()
}

// diff compares fresh results against a baseline capture and reports
// per-benchmark deltas on the guarded units. Returns the number of
// regressions beyond tolerance; nsTolerance applies to ns/op only, so
// wall-clock suites can run a loose timing tripwire while allocs/op
// and wireB/round stay strictly gated.
func diff(basePath string, fresh map[string]map[string]float64, tolerance, nsTolerance float64) (int, error) {
	f, err := os.Open(basePath)
	if err != nil {
		return 0, err
	}
	// Read-only baseline: a close error has nothing to report.
	defer func() { _ = f.Close() }()
	base := map[string]map[string]float64{}
	if _, err := render(f, io.Discard, nil, base); err != nil {
		return 0, err
	}

	fmt.Printf("\ndiff vs %s (tolerance %.0f%%, ns/op %.0f%%):\n", basePath, tolerance*100, nsTolerance*100)
	regressions, compared := 0, 0
	for name, baseM := range base {
		freshM, ok := fresh[name]
		if !ok {
			continue // baseline benchmark not in this run (different package set)
		}
		for _, unit := range diffUnits {
			b, okB := baseM[unit]
			fr, okF := freshM[unit]
			if !okB || !okF || b == 0 {
				continue
			}
			compared++
			delta := (fr - b) / b
			allowed := tolerance
			if unit == "ns/op" {
				allowed = nsTolerance
				if nsNoiseFloor/b > allowed {
					allowed = nsNoiseFloor / b
				}
				// A benchmark cannot be gated tighter than its own
				// run-to-run variance in either capture window.
				if s := nsSpread(baseM); s > allowed {
					allowed = s
				}
				if s := nsSpread(freshM); s > allowed {
					allowed = s
				}
			}
			verdict := "ok"
			if delta > allowed {
				verdict = "REGRESSED"
				regressions++
			}
			fmt.Printf("  %-44s %-12s %14.0f -> %-14.0f %+7.1f%%  %s\n",
				name, unit, b, fr, delta*100, verdict)
		}
	}
	if compared == 0 {
		return 0, fmt.Errorf("no comparable benchmarks between this run and %s", basePath)
	}
	fmt.Printf("%d measurements compared, %d regressed\n", compared, regressions)
	return regressions, nil
}

func main() {
	os.Exit(run())
}

func run() (code int) {
	rawPath := flag.String("raw", "", "also copy the raw input stream to this file (replaces `| tee`)")
	diffPath := flag.String("diff", "", "compare against this baseline `go test -json` capture; exit non-zero on regression")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional regression per measurement in -diff mode")
	nsTolerance := flag.Float64("ns-tolerance", 0, "allowed fractional ns/op regression in -diff mode (0 = same as -tolerance); loosen for wall-clock suites without loosening the deterministic units")
	ratios := flag.String("ratio", "", "comma-separated same-run ratio gates `numBench/denBench<=limit` on ns/op, checked against the fresh results in -diff mode")
	flag.Parse()
	if *nsTolerance == 0 {
		*nsTolerance = *tolerance
	}
	ratioSpecs, err := parseRatios(*ratios)
	if err != nil {
		fmt.Fprintln(os.Stderr, "padll-benchfmt:", err)
		return 2
	}

	var raw io.Writer
	if *rawPath != "" {
		f, err := os.Create(*rawPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "padll-benchfmt:", err)
			return 1
		}
		w := bufio.NewWriter(f)
		defer func() {
			// Flush-then-close: a full disk surfaces here, not silently.
			err := w.Flush()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "padll-benchfmt:", err)
				code = 1
			}
		}()
		raw = w
	}

	var fresh map[string]map[string]float64
	if *diffPath != "" {
		fresh = map[string]map[string]float64{}
	}
	benches, err := render(os.Stdin, os.Stdout, raw, fresh)
	if err != nil {
		fmt.Fprintln(os.Stderr, "padll-benchfmt:", err)
		return 1
	}
	fmt.Printf("\n%d benchmark results\n", benches)

	if *diffPath != "" {
		regressions, err := diff(*diffPath, fresh, *tolerance, *nsTolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, "padll-benchfmt:", err)
			return 1
		}
		if len(ratioSpecs) > 0 {
			fmt.Printf("\nsame-run ratio gates:\n")
			exceeded, err := gateRatios(ratioSpecs, fresh)
			if err != nil {
				fmt.Fprintln(os.Stderr, "padll-benchfmt:", err)
				return 1
			}
			regressions += exceeded
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "padll-benchfmt: %d benchmark measurements regressed beyond their gates\n", regressions)
			return 1
		}
	}
	return 0
}
