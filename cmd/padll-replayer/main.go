// Command padll-replayer replays a metadata trace against a PADLL-
// interposed file-system stack, reproducing the paper's evaluation
// methodology (§IV): one thread per operation type, rates scaled down,
// time accelerated so each replayer second covers a minute of the log.
//
// The replayed operations run against an in-memory local file system (as
// the paper's metadata experiments do, to avoid harming a production
// PFS); the stage's control service can be exposed so padll-ctl or
// padll-controller can throttle the replay live.
//
// Usage:
//
//	padll-replayer -synthetic -ops open,close,getattr -duration 30s \
//	    -rule 'limit id:meta class:metadata rate:10k'
//	padll-replayer -trace trace.csv -serve :7171 -controller 127.0.0.1:7070
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"padll"
	"padll/internal/clock"
	"padll/internal/localfs"
	"padll/internal/posix"
	"padll/internal/trace"
)

func main() {
	var (
		traceFile  = flag.String("trace", "", "trace CSV to replay (see padll-tracegen)")
		synthetic  = flag.Bool("synthetic", false, "generate a single-MDT ABCI-like trace instead of reading one")
		seed       = flag.Int64("seed", 2022, "seed for -synthetic")
		opsFlag    = flag.String("ops", "", "comma-separated op types to replay (default: all in the trace)")
		rateScale  = flag.Float64("rate-scale", 0.5, "rate scale (the paper replays at half rate)")
		accel      = flag.Float64("accel", 60, "time acceleration (60: 1s wall = 1min trace)")
		duration   = flag.Duration("duration", 30*time.Second, "wall-clock replay budget (0 = full trace)")
		ruleFlag   = flag.String("rule", "", "QoS rule to install locally (DSL form)")
		jobID      = flag.String("job", "replay-job", "job ID stamped on requests")
		serve      = flag.String("serve", "", "expose the stage control service on this address")
		controller = flag.String("controller", "", "register with this control plane")
		heartbeat  = flag.Duration("heartbeat", 0, "probe the controller at this interval; on loss freeze limits and mark the stage degraded (0 = off)")
		files      = flag.Int("files", 128, "pre-created file population")
	)
	flag.Parse()

	clk := clock.NewReal()

	var tr *trace.Trace
	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		tr, err = trace.ReadCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
	case *synthetic:
		tr = trace.SingleMDT(trace.PFSALike(*seed))
	default:
		fatal(fmt.Errorf("need -trace FILE or -synthetic"))
	}

	var ops []posix.Op
	if *opsFlag != "" {
		for _, name := range strings.Split(*opsFlag, ",") {
			op, err := posix.ParseOp(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			ops = append(ops, op)
		}
		tr = tr.Filter(ops...)
	}

	// Build the stack: app -> shim -> local FS (the paper submits
	// metadata workloads to the node-local file system).
	backend := localfs.New(clk)
	hostname, _ := os.Hostname()
	dp, err := padll.NewDataPlane(
		padll.JobInfo{JobID: *jobID, User: os.Getenv("USER"), PID: os.Getpid(), Hostname: hostname},
		padll.MountPFS("/", backend),
	)
	if err != nil {
		fatal(err)
	}
	defer dp.Close()
	if *ruleFlag != "" {
		rule, err := padll.ParseRule(*ruleFlag)
		if err != nil {
			fatal(err)
		}
		dp.ApplyRule(rule)
		fmt.Println("installed", rule.String())
	}
	if *serve != "" {
		if err := dp.Serve(*serve, *controller); err != nil {
			fatal(err)
		}
		fmt.Println("stage control service on", dp.Addr())
		if *heartbeat > 0 {
			if *controller == "" {
				fatal(fmt.Errorf("-heartbeat needs -controller"))
			}
			if err := dp.StartHeartbeat(*heartbeat, *heartbeat); err != nil {
				fatal(err)
			}
			fmt.Printf("heartbeat to %s every %v\n", *controller, *heartbeat)
		}
	}

	w := &trace.Workload{
		Ctl:   dp.Client(),
		Raw:   dp.RawClient(), // below the shim, same descriptor namespace
		Dir:   "/replay",
		Files: *files,
	}
	if err := w.Prepare(); err != nil {
		fatal(err)
	}

	r := &trace.Replayer{
		Trace:     tr,
		Submit:    w.Submit,
		Accel:     *accel,
		RateScale: *rateScale,
		Ops:       ops,
	}

	ctx, cancel := context.WithCancel(context.Background())
	if *duration > 0 {
		ctx, cancel = context.WithTimeout(ctx, *duration)
	}
	defer cancel()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		cancel()
	}()

	fmt.Printf("replaying %v of trace (%d samples, %d op types) at %.0fx accel, %.0f%% rate\n",
		tr.Duration(), tr.Len(), len(tr.Ops), *accel, *rateScale*100)
	start := clk.Now()
	if err := r.Run(ctx); err != nil {
		fatal(err)
	}
	elapsed := clk.Now().Sub(start)

	fmt.Printf("done in %v (%d submission errors)\n", elapsed.Round(time.Millisecond), r.Errors())
	replayed := ops
	if len(replayed) == 0 {
		replayed = tr.Ops
	}
	for _, op := range replayed {
		s := r.Series(op)
		if s == nil || s.Len() == 0 {
			continue
		}
		fmt.Printf("  %-10s total=%-10d mean=%8.0f/s peak=%8.0f/s\n",
			op, r.Total(op), s.Mean(), s.Max())
	}
	if deg := dp.DegradedFor(); deg > 0 {
		fmt.Printf("controller degraded for %v of the run\n", deg.Round(time.Millisecond))
	}
	stats := dp.Stats()
	for _, q := range stats.Queues {
		line := fmt.Sprintf("  queue %-12s throttled to %8.0f/s, admitted %d", q.RuleID, q.Limit, q.Total)
		if q.WaitP99 > 0 {
			line += fmt.Sprintf(", wait p50/p99 %v/%v",
				time.Duration(q.WaitP50*float64(time.Second)).Round(time.Microsecond),
				time.Duration(q.WaitP99*float64(time.Second)).Round(time.Microsecond))
		}
		fmt.Println(line)
	}
	if svc, ok := dp.ControlServiceStats(); ok {
		fmt.Printf("  control service: %d calls (%d batched ops), collects %d delta / %d full\n",
			svc.Calls, svc.BatchedOps, svc.DeltaCollects, svc.FullCollects)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "padll-replayer:", err)
	os.Exit(1)
}
