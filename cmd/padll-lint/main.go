// Command padll-lint runs PADLL's static-analysis suite: four analyzers
// that enforce the repository's determinism and concurrency invariants
// (see internal/lint). It is built purely on the standard library's
// go/ast, go/parser, go/types and go/token packages — no external
// analysis framework.
//
// Usage:
//
//	padll-lint ./...                 # whole repository
//	padll-lint ./internal/stage      # one package
//	padll-lint -json ./...           # machine-readable findings
//	padll-lint -list                 # describe the analyzers
//
// Exit code contract: 0 = no findings, 1 = findings reported,
// 2 = usage or load error. Suppression pragma:
//
//	//lint:allow <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"padll/internal/lint"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit findings as JSON")
		list     = flag.Bool("list", false, "list the analyzers and exit")
		analyzer = flag.String("analyzer", "", "run only the named analyzers (comma-separated)")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *analyzer != "" {
		analyzers = nil
		for _, name := range strings.Split(*analyzer, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "padll-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "padll-lint:", err)
		os.Exit(2)
	}
	res, err := lint.Run(root, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "padll-lint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "padll-lint:", err)
			os.Exit(2)
		}
	} else {
		res.WriteText(os.Stdout)
	}
	if len(res.Diags) > 0 {
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
