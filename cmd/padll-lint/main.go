// Command padll-lint runs PADLL's static-analysis suite: eight analyzers
// that enforce the repository's determinism, concurrency, hot-path, and
// wire-protocol invariants (see internal/lint). It is built purely on
// the standard library's go/ast, go/parser, go/types and go/token
// packages — no external analysis framework.
//
// Usage:
//
//	padll-lint ./...                 # whole repository
//	padll-lint ./internal/stage      # one package
//	padll-lint -json ./...           # machine-readable findings
//	padll-lint -list                 # describe the analyzers
//	padll-lint -enable wirecheck     # run only the named analyzers
//	padll-lint -disable leakcheck    # run all but the named analyzers
//	padll-lint -diff ./...           # preview mechanical fixes
//	padll-lint -fix ./...            # apply mechanical fixes in place
//
// Exit code contract: 0 = no findings, 1 = findings reported,
// 2 = usage or load error. With -fix, findings that were mechanically
// repaired do not count against the exit code. Suppression pragma:
//
//	//lint:allow <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"padll/internal/lint"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit findings as JSON")
		list     = flag.Bool("list", false, "list the analyzers and exit")
		analyzer = flag.String("analyzer", "", "alias of -enable (kept for compatibility)")
		enable   = flag.String("enable", "", "run only the named analyzers (comma-separated)")
		disable  = flag.String("disable", "", "run all analyzers except the named ones (comma-separated)")
		fix      = flag.Bool("fix", false, "apply mechanical fixes in place")
		diff     = flag.Bool("diff", false, "print the fixes -fix would apply, without writing")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *fix && *diff {
		fmt.Fprintln(os.Stderr, "padll-lint: -fix and -diff are mutually exclusive")
		os.Exit(2)
	}

	analyzers, err := selectAnalyzers(*enable, *analyzer, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "padll-lint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "padll-lint:", err)
		os.Exit(2)
	}
	res, err := lint.Run(root, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "padll-lint:", err)
		os.Exit(2)
	}

	switch {
	case *diff:
		fixes := res.Fixes()
		for _, f := range fixes {
			fmt.Printf("%s: would insert %q (%s)\n", relPath(root, f.Path), f.Insert, f.Summary)
		}
		fmt.Printf("padll-lint: %d packages, %d fixes available\n", res.Packages, len(fixes))
		if len(res.Diags) > 0 {
			os.Exit(1)
		}
		return
	case *fix:
		fixes := res.Fixes()
		changed, err := lint.ApplyFixes(fixes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "padll-lint:", err)
			os.Exit(2)
		}
		for _, path := range changed {
			fmt.Printf("fixed %s\n", relPath(root, path))
		}
		// Unfixable findings still fail the run.
		unfixed := 0
		for _, d := range res.Diags {
			if d.Fix == nil {
				fmt.Println(d.String())
				unfixed++
			}
		}
		fmt.Printf("padll-lint: %d packages, %d fixes applied, %d findings left\n",
			res.Packages, len(fixes), unfixed)
		if unfixed > 0 {
			os.Exit(1)
		}
		return
	case *jsonOut:
		if err := res.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "padll-lint:", err)
			os.Exit(2)
		}
	default:
		res.WriteText(os.Stdout)
	}
	if len(res.Diags) > 0 {
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -enable/-analyzer/-disable flags against
// the registry.
func selectAnalyzers(enable, alias, disable string) ([]*lint.Analyzer, error) {
	if enable == "" {
		enable = alias
	} else if alias != "" {
		return nil, fmt.Errorf("-enable and -analyzer are aliases; pass only one")
	}
	if enable != "" && disable != "" {
		return nil, fmt.Errorf("-enable and -disable are mutually exclusive")
	}
	if enable != "" {
		var out []*lint.Analyzer
		for _, name := range strings.Split(enable, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				return nil, fmt.Errorf("unknown analyzer %q", strings.TrimSpace(name))
			}
			out = append(out, a)
		}
		return out, nil
	}
	analyzers := lint.Analyzers()
	if disable == "" {
		return analyzers, nil
	}
	off := make(map[string]bool)
	for _, name := range strings.Split(disable, ",") {
		name = strings.TrimSpace(name)
		if lint.AnalyzerByName(name) == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		off[name] = true
	}
	var out []*lint.Analyzer
	for _, a := range analyzers {
		if !off[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// relPath renders a path relative to the module root when possible.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
