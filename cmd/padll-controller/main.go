// Command padll-controller runs the PADLL control plane: it serves the
// registration endpoint data-plane stages dial at job start, and runs the
// feedback control loop that continuously retunes every job's metadata
// rate (§III-B of the paper).
//
// Usage:
//
//	padll-controller -listen :7070 -algorithm proportional -limit 300k \
//	    -reserve job1=40k -reserve job2=60k -interval 1s
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"padll"
	"padll/internal/policy"
)

// reservations accumulates repeated -reserve job=rate flags.
type reservations map[string]float64

func (r reservations) String() string { return fmt.Sprint(map[string]float64(r)) }

func (r reservations) Set(s string) error {
	job, rateStr, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want job=rate, got %q", s)
	}
	rule, err := policy.Parse("limit id:tmp rate:" + rateStr)
	if err != nil {
		return err
	}
	r[job] = rule.Rate
	return nil
}

func main() {
	res := reservations{}
	var (
		listen    = flag.String("listen", "127.0.0.1:7070", "registration endpoint address")
		algorithm = flag.String("algorithm", "proportional", "control algorithm: static | priority | proportional | none")
		limit     = flag.Float64("limit", 300_000, "cluster-wide metadata rate limit (ops/s)")
		perJob    = flag.Float64("static-per-job", 0, "static setup: fixed per-job rate (0 = divide limit)")
		interval  = flag.Duration("interval", time.Second, "feedback loop period")
		report    = flag.Duration("report", 5*time.Second, "allocation report period (0 = quiet)")
		evict     = flag.Int("evict-after", 3, "deregister a stage after this many consecutive failed control rounds (0 = never)")
		pushConc  = flag.Int("push-concurrency", 0, "stages pushed to in parallel per round (0 = default, 1 = sequential)")
		httpAddr  = flag.String("http", "", "HTTP monitor address (e.g. 127.0.0.1:8080; empty = disabled)")
	)
	flag.Var(res, "reserve", "per-job reservation, repeatable: job=rate (rates accept k/m suffixes)")
	flag.Parse()

	var alg padll.Algorithm
	switch *algorithm {
	case "static":
		alg = padll.StaticShare(*perJob)
	case "priority":
		alg = padll.Priority()
	case "proportional":
		alg = padll.ProportionalShare()
	case "none":
		alg = nil
	default:
		fmt.Fprintf(os.Stderr, "padll-controller: unknown algorithm %q\n", *algorithm)
		os.Exit(2)
	}

	opts := []padll.ControlOption{padll.WithClusterLimit(*limit)}
	if alg != nil {
		opts = append(opts, padll.WithAlgorithm(alg))
	}
	if *evict > 0 {
		opts = append(opts, padll.WithEvictAfter(*evict))
	}
	if *pushConc > 0 {
		opts = append(opts, padll.WithPushConcurrency(*pushConc))
	}
	cp := padll.NewControlPlane(opts...)
	for job, rate := range res {
		cp.SetReservation(job, rate)
	}

	addr, err := cp.Serve(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "padll-controller:", err)
		os.Exit(1)
	}
	fmt.Printf("padll-controller: registrar on %s, algorithm=%s, limit=%.0f ops/s\n", addr, *algorithm, *limit)
	if *httpAddr != "" {
		monAddr, err := cp.ServeMonitor(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "padll-controller:", err)
			os.Exit(1)
		}
		fmt.Printf("padll-controller: HTTP monitor on http://%s/\n", monAddr)
	}
	if alg != nil {
		cp.Run(*interval)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if *report > 0 {
		ticker := time.NewTicker(*report)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				cp.Stop()
				return
			case <-ticker.C:
				printReport(cp)
			}
		}
	}
	<-stop
	cp.Stop()
}

func printReport(cp *padll.ControlPlane) {
	snaps := cp.Collect()
	if len(snaps) == 0 {
		fmt.Println("  (no registered jobs)")
		return
	}
	alloc := cp.LastAllocation()
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].JobID < snaps[j].JobID })
	for _, s := range snaps {
		line := fmt.Sprintf("  job %-12s stages=%d demand=%8.0f throughput=%8.0f allocated=%8.0f",
			s.JobID, s.Stages, s.Demand, s.Throughput, alloc[s.JobID])
		if s.DegradedStages > 0 {
			line += fmt.Sprintf(" degraded=%d", s.DegradedStages)
		}
		if s.FailedStages > 0 {
			line += fmt.Sprintf(" failed=%d", s.FailedStages)
		}
		fmt.Println(line)
	}
	if rs, ok := cp.LastRound(); ok {
		fmt.Printf("  round: %d stages, %d rpcs (%d pushes skipped), %d B on wire, %s\n",
			rs.Stages, rs.RPCs(), rs.PushesSkipped,
			rs.BytesRead+rs.BytesWritten, rs.Duration.Round(time.Microsecond))
	}
}
