// Command padll-experiments regenerates the tables and figures of the
// PADLL paper's evaluation (see DESIGN.md for the experiment index) and
// prints the rows/series the paper reports. Series can also be dumped as
// CSV for plotting.
//
// Usage:
//
//	padll-experiments -fig all
//	padll-experiments -fig 4 -csv out/
//	padll-experiments -table overhead
//	padll-experiments -ext drf,mds,ablation
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"padll/internal/experiments"
	"padll/internal/metrics"
	"padll/internal/posix"
)

func main() {
	var (
		fig    = flag.String("fig", "", "figures to regenerate: 1,2,4,5 or all")
		table  = flag.String("table", "", "tables to regenerate: overhead")
		ext    = flag.String("ext", "", "extensions: drf,mds,ablation,scalability,adaptive,chaos,fleet or all")
		seed   = flag.Int64("seed", experiments.DefaultSeed, "workload seed")
		csvDir = flag.String("csv", "", "directory to dump series CSVs into")
	)
	flag.Parse()
	if *fig == "" && *table == "" && *ext == "" {
		*fig, *table, *ext = "all", "overhead", "all"
	}

	want := func(spec, key string) bool {
		if spec == "" {
			return false
		}
		if spec == "all" {
			return true
		}
		for _, f := range strings.Split(spec, ",") {
			if strings.TrimSpace(f) == key {
				return true
			}
		}
		return false
	}

	if want(*fig, "1") {
		r := experiments.Fig1(*seed)
		fmt.Println(r.Render())
		dumpCSV(*csvDir, "fig1_hourly.csv", r.Hourly.CSV())
	}
	if want(*fig, "2") {
		fmt.Println(experiments.Fig2(*seed).Render())
	}
	if want(*fig, "4") {
		for _, op := range []posix.Op{posix.OpOpen, posix.OpClose, posix.OpGetAttr, posix.OpRename} {
			r := experiments.Fig4PerOp(*seed, op)
			fmt.Println(r.Render())
			dumpCSV(*csvDir, "fig4_"+op.String()+".csv",
				metrics.MergeCSV(named("baseline", r.Baseline), named("padll", r.Padll), named("limit", r.Limits)))
		}
		r := experiments.Fig4PerClass(*seed)
		fmt.Println(r.Render())
		dumpCSV(*csvDir, "fig4_metadata.csv",
			metrics.MergeCSV(named("baseline", r.Baseline), named("padll", r.Padll), named("limit", r.Limits)))

		for _, write := range []bool{true, false} {
			d, err := experiments.Fig4Data(experiments.DefaultFig4DataConfig(write))
			if err != nil {
				fatal(err)
			}
			fmt.Println(d.Render())
			dumpCSV(*csvDir, "fig4_data_"+d.Mode+".csv", d.Padll.CSV())
		}
	}
	if want(*fig, "5") {
		for _, r := range experiments.Fig5All(*seed) {
			fmt.Println(r.Render())
			series := []*metrics.Series{named("aggregate", r.Aggregate)}
			// Sorted job order: map iteration order would shuffle the
			// CSV columns between otherwise identical runs.
			ids := make([]string, 0, len(r.PerJob))
			for id := range r.PerJob {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, id := range ids {
				series = append(series, named(id, r.PerJob[id]))
			}
			dumpCSV(*csvDir, "fig5_"+string(r.Setup)+".csv", metrics.MergeCSV(series...))
		}
	}
	if want(*table, "overhead") {
		rows, err := experiments.OverheadTable(0)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderOverhead(rows))
	}
	if want(*ext, "drf") {
		fmt.Println(experiments.DRFExtension().Render())
	}
	if want(*ext, "mds") {
		fmt.Println(experiments.MDSProtection(*seed).Render())
	}
	if want(*ext, "adaptive") {
		fmt.Println(experiments.AdaptiveLimit(*seed).Render())
	}
	if want(*ext, "scalability") {
		rows, err := experiments.ControlPlaneScalability()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderScalability(rows))
	}
	if want(*ext, "chaos") {
		r := experiments.ChaosReplay(*seed)
		fmt.Println(r.Render())
		series := []*metrics.Series{named("aggregate", r.Aggregate)}
		ids := make([]string, 0, len(r.PerJob))
		for id := range r.PerJob {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			series = append(series, named(id, r.PerJob[id]))
		}
		dumpCSV(*csvDir, "e7_chaos.csv", metrics.MergeCSV(series...))
	}
	if want(*ext, "fleet") {
		r, err := experiments.FleetScale()
		if err != nil {
			fatal(err)
		}
		fmt.Println(r.Render())
	}
	if want(*ext, "ablation") {
		burst := experiments.BurstAblation(*seed)
		gran := experiments.GranularityAblation(*seed)
		fmt.Println(experiments.RenderAblations(burst, gran))
		mech, err := experiments.MechanismAblation()
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderMechanism(mech))
	}
}

// named relabels a series for CSV headers.
func named(name string, s *metrics.Series) *metrics.Series {
	out := metrics.NewSeries(name)
	out.Points = s.Points
	return out
}

func dumpCSV(dir, name, content string) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("  wrote %s\n\n", filepath.Join(dir, name))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "padll-experiments:", err)
	os.Exit(1)
}
