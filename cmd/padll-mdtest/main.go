// Command padll-mdtest runs the mdtest-like metadata benchmark against
// the simulated Lustre PFS, optionally through a PADLL data plane so the
// metadata stream is rate limited — a direct way to observe what a QoS
// rule does to each metadata phase.
//
// Usage:
//
//	padll-mdtest -ranks 8 -files 1000 -dirs 8
//	padll-mdtest -ranks 4 -rule 'limit id:meta class:metadata rate:5k'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"padll"
	"padll/internal/clock"
	"padll/internal/mdtest"
	"padll/internal/pfs"
	"padll/internal/posix"
)

func main() {
	var (
		ranks    = flag.Int("ranks", 4, "parallel ranks")
		files    = flag.Int("files", 500, "files per rank")
		dirs     = flag.Int("dirs", 4, "directories per rank")
		ruleFlag = flag.String("rule", "", "QoS rule installed on the data plane (DSL)")
		mdsCap   = flag.Float64("mds-capacity", 0, "MDS capacity in cost units/s (0 = effectively unbounded)")
		backFlag = flag.String("backend", "sim", "sim | os — simulated PFS or a real OS directory")
		osRoot   = flag.String("os-root", "", "host directory for -backend=os (a temp dir when empty)")
	)
	flag.Parse()

	clk := clock.NewReal()
	var backend posix.FileSystem
	var simBackend *pfs.PFS
	switch *backFlag {
	case "sim":
		cfg := pfs.Config{}
		if *mdsCap > 0 {
			cfg.MDSCapacity = *mdsCap
			cfg.MDSBurst = *mdsCap / 10
		} else {
			cfg.MDSCapacity = 1e12
			cfg.MDSBurst = 1e12
		}
		simBackend = pfs.New(clk, cfg)
		backend = simBackend
	case "os":
		root := *osRoot
		if root == "" {
			tmp, err := os.MkdirTemp("", "padll-mdtest-*")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(tmp)
			root = tmp
		}
		osBackend, err := padll.NewOSBackend(root)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("OS backend rooted at %s (real kernel metadata I/O)\n", root)
		backend = osBackend
	default:
		fatal(fmt.Errorf("unknown backend %q (want sim or os)", *backFlag))
	}

	var client *posix.Client
	if *ruleFlag != "" {
		hostname, _ := os.Hostname()
		dp, err := padll.NewDataPlane(
			padll.JobInfo{JobID: "mdtest-job", PID: os.Getpid(), Hostname: hostname},
			padll.MountPFS("/", backend))
		if err != nil {
			fatal(err)
		}
		defer dp.Close()
		rule, err := padll.ParseRule(*ruleFlag)
		if err != nil {
			fatal(err)
		}
		dp.ApplyRule(rule)
		fmt.Println("installed", rule.String())
		client = dp.Client()
	} else {
		client = posix.NewClient(backend)
	}

	res, err := mdtest.Run(context.Background(), mdtest.Config{
		Client:       client,
		Dir:          "/mdtest",
		Ranks:        *ranks,
		FilesPerRank: *files,
		DirsPerRank:  *dirs,
		Clock:        clk,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Render())
	if simBackend != nil {
		st := simBackend.Stats()
		fmt.Printf("PFS: %d metadata ops (%.0f weighted units), mean MDS latency %v\n",
			st.MetadataOps, st.MetadataUnits, st.MeanMetadataLatency)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "padll-mdtest:", err)
	os.Exit(1)
}
