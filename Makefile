# PADLL-Go build targets. Everything is plain `go` — this file only names
# the common invocations.

GO ?= go

.PHONY: all build test race fuzz-smoke bench bench-all bench-smoke bench-diff vet fmt lint lint-self fix-smoke ci experiments tools clean

# Hot-path packages benchmarked by `make bench`: the data-plane fast
# path plus the io/fs bridge (vfs/osfs bridge-vs-direct overhead).
BENCH_PKGS = ./internal/stage/... ./internal/metrics/... \
             ./internal/tokenbucket/... ./internal/policy/... \
             ./internal/vfs/...

# Control-plane packages benchmarked by `make bench` (the fleet feedback
# loop: batched wire protocol, delta collection, RunOnce at scale).
BENCH_CONTROL_PKGS = ./internal/control/... ./internal/rpcio/...

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Control-plane packages under the race detector, twice: -count=2
# defeats the test cache and shakes out order-dependent state, which is
# how the chaos determinism tests are meant to be run.
race:
	$(GO) test -race -count=2 ./internal/stage/... ./internal/control/... ./internal/rpcio/... ./internal/tokenbucket/...

# 10-second smoke run of each fuzz target (go allows one -fuzz per
# invocation). The checked-in corpora under testdata/fuzz replay on every
# plain `go test` already; this also exercises fresh mutations.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzMatcher -fuzztime 10s ./internal/policy/
	$(GO) test -run '^$$' -fuzz FuzzTraceParse -fuzztime 10s ./internal/trace/
	$(GO) test -run '^$$' -fuzz FuzzPragmaParse -fuzztime 10s ./internal/lint/
	$(GO) test -run '^$$' -fuzz FuzzWireDecode -fuzztime 10s ./internal/rpcio/

# Hot-path microbenchmarks at 1, 4 and 8 simulated CPUs, then the
# control-plane fleet benchmarks; the raw `go test -json` event streams
# land in BENCH_stage.json / BENCH_control.json so runs can be diffed
# against the committed baselines. The fleet benchmarks run at the
# default CPU count only: they measure wall-clock rounds over live
# sockets, not CPU-parallel hot paths. -count=3 gives the baseline the
# same minimum-of-three estimate bench-diff uses on the fresh side, so
# the gate never compares against a single unlucky (or lucky) sample.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -cpu=1,4,8 -count=3 -json $(BENCH_PKGS) \
		| $(GO) run ./cmd/padll-benchfmt -raw BENCH_stage.json
	$(GO) test -run='^$$' -bench=. -benchmem -count=3 -json $(BENCH_CONTROL_PKGS) \
		| $(GO) run ./cmd/padll-benchfmt -raw BENCH_control.json

bench-all:
	$(GO) test -bench=. -benchmem ./...

# Re-run the benchmarks and fail on regression in ns/op, allocs/op or
# wireB/round against the committed BENCH_control.json /
# BENCH_stage.json baselines (refresh with `make bench`). This is the
# tripwire that keeps the binary codec's wire wins and the alloc-free
# request path locked in. The deterministic units — allocs/op and
# wireB/round — are gated strictly at 15%. Wall-clock ns/op swings
# tens of percent between steal/thermal windows on a shared box
# (-count=3 keeping the fastest run filters in-window noise, not
# cross-window drift), so cross-window ns/op is a
# catastrophic-regression tripwire at 50%, and the interposition-tax
# claims that actually matter are gated as SAME-RUN ratios — bridged
# vs direct ns/op from one capture window — which host-speed drift
# cancels out of. Steady-state ratios on an idle box are ~1.2x/1.2x/
# 1.1x (stat/walk/readfile); the limits leave noise margin while still
# catching any real regression, which costs microseconds, not percent.
bench-diff:
	$(GO) test -run='^$$' -bench=. -benchmem -count=3 -json $(BENCH_CONTROL_PKGS) \
		| $(GO) run ./cmd/padll-benchfmt -diff BENCH_control.json -ns-tolerance 0.5
	$(GO) test -run='^$$' -bench=. -benchmem -count=3 -cpu=4 -json $(BENCH_PKGS) \
		| $(GO) run ./cmd/padll-benchfmt -diff BENCH_stage.json -ns-tolerance 0.5 \
			-ratio 'BenchmarkOSBridgeStat-4/BenchmarkOSDirectStat-4<=1.6,BenchmarkOSBridgeWalkDir-4/BenchmarkOSDirectWalkDir-4<=1.6,BenchmarkOSBridgeReadFile-4/BenchmarkOSDirectReadFile-4<=1.6'

# One-iteration pass over every hot-path and control-plane benchmark:
# catches bitrot (compile errors, panics, b.Fatal) without paying for
# real measurement.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x $(BENCH_PKGS) > /dev/null
	$(GO) test -run='^$$' -bench=. -benchtime=1x $(BENCH_CONTROL_PKGS) > /dev/null

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Run go vet plus the in-tree static-analysis suite (all eight
# analyzers: clockcheck, lockcheck, errdrop, printcheck, atomiccheck,
# hotpathcheck, wirecheck, leakcheck). Exits non-zero on any
# unsuppressed finding.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/padll-lint ./...

# The analyzer suite must hold to its own standards: run padll-lint
# over internal/lint and the driver itself.
lint-self:
	$(GO) run ./cmd/padll-lint ./internal/lint ./cmd/padll-lint

# -fix dry-run smoke: a clean tree must propose zero fixes, and the
# preview must be idempotent (two consecutive runs print the same plan).
fix-smoke:
	@$(GO) run ./cmd/padll-lint -diff ./... > .fixsmoke.1
	@$(GO) run ./cmd/padll-lint -diff ./... > .fixsmoke.2
	@cmp .fixsmoke.1 .fixsmoke.2 || { echo "padll-lint -diff is not idempotent"; rm -f .fixsmoke.1 .fixsmoke.2; exit 1; }
	@grep -q "0 fixes available" .fixsmoke.1 || { echo "padll-lint -diff proposes fixes on a clean tree:"; cat .fixsmoke.1; rm -f .fixsmoke.1 .fixsmoke.2; exit 1; }
	@rm -f .fixsmoke.1 .fixsmoke.2
	@echo "fix-smoke: -diff idempotent, no fixes pending"

# The full gate: formatting, vet, padll-lint (plus self-lint and the
# -fix dry-run smoke), build, race-enabled tests, a plain-mode pass
# over the packages whose AllocsPerRun guards skip under -race (race
# instrumentation defeats escape analysis, so alloc counts only mean
# anything uninstrumented), the doubled control-plane race pass, and a
# one-iteration benchmark smoke so the hot-path benches can't rot.
ci:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi
	$(MAKE) lint
	$(MAKE) lint-self
	$(MAKE) fix-smoke
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test ./internal/posix/... ./internal/vfs/... ./internal/stage/...
	$(MAKE) race
	$(MAKE) bench-smoke
	$(MAKE) bench-diff

# Regenerate every figure/table of the paper (tables printed to stdout,
# plot series dumped under out/).
experiments:
	$(GO) run ./cmd/padll-experiments -fig all -table overhead -ext all -csv out

# Build all command-line tools into ./bin.
tools:
	@mkdir -p bin
	for t in padll-controller padll-ctl padll-replayer padll-ior \
	         padll-mdtest padll-tracegen padll-experiments padll-benchfmt; do \
		$(GO) build -o bin/$$t ./cmd/$$t; \
	done

clean:
	rm -rf bin out test_output.txt bench_output.txt
