# PADLL-Go build targets. Everything is plain `go` — this file only names
# the common invocations.

GO ?= go

.PHONY: all build test race bench vet fmt lint ci experiments tools clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Run the in-tree static-analysis suite (clockcheck, lockcheck, errdrop,
# printcheck). Exits non-zero on any unsuppressed finding.
lint:
	$(GO) run ./cmd/padll-lint ./...

# The full gate: formatting, vet, padll-lint, build, race-enabled tests.
ci:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/padll-lint ./...
	$(GO) build ./...
	$(GO) test -race ./...

# Regenerate every figure/table of the paper (tables printed to stdout,
# plot series dumped under out/).
experiments:
	$(GO) run ./cmd/padll-experiments -fig all -table overhead -ext all -csv out

# Build all command-line tools into ./bin.
tools:
	@mkdir -p bin
	for t in padll-controller padll-ctl padll-replayer padll-ior \
	         padll-mdtest padll-tracegen padll-experiments; do \
		$(GO) build -o bin/$$t ./cmd/$$t; \
	done

clean:
	rm -rf bin out test_output.txt bench_output.txt
