// Priority scheduling: the paper's Fig. 5 "Priority" setup on a live
// stack. Two jobs run the same metadata-heavy loop; the administrator
// gives the production job three times the reserved rate of the
// best-effort job. The control plane's feedback loop holds each job to
// its priority rate, so the best-effort job finishes proportionally
// later — without touching either application.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"padll"
	"padll/internal/clock"
	"padll/internal/localfs"
)

const (
	opsPerJob    = 20_000
	clusterLimit = 20_000 // ops/s
)

func main() {
	clk := clock.NewReal()
	cp := padll.NewControlPlane(
		padll.WithAlgorithm(padll.Priority()),
		padll.WithClusterLimit(clusterLimit),
	)
	defer cp.Stop()

	jobs := []struct {
		id   string
		rate float64
	}{
		{"best-effort", 5_000},
		{"production", 15_000},
	}

	// Attach every job first, then run one allocation round so workers
	// start already held to their priority rates.
	planes := make(map[string]*padll.DataPlane, len(jobs))
	for _, j := range jobs {
		backend := localfs.New(clk)
		dp, err := padll.NewDataPlane(
			padll.JobInfo{JobID: j.id, User: "demo", Hostname: "node-" + j.id},
			padll.MountPFS("/pfs", backend),
		)
		if err != nil {
			log.Fatal(err)
		}
		defer dp.Close()
		cp.SetReservation(j.id, j.rate)
		if err := cp.AttachLocal(dp); err != nil {
			log.Fatal(err)
		}
		planes[j.id] = dp
	}
	cp.RunOnce()

	type result struct {
		id      string
		elapsed time.Duration
	}
	results := make(chan result, len(jobs))
	var wg sync.WaitGroup
	for _, j := range jobs {
		dp := planes[j.id]
		wg.Add(1)
		go func(id string, dp *padll.DataPlane) {
			defer wg.Done()
			c := dp.Client()
			fd, err := c.Creat("/pfs/f", 0o644)
			if err != nil {
				log.Fatal(err)
			}
			c.Close(fd)
			start := clk.Now()
			for i := 0; i < opsPerJob; i++ {
				if _, err := c.GetAttr("/pfs/f"); err != nil {
					log.Fatal(err)
				}
			}
			results <- result{id, clk.Now().Sub(start)}
		}(j.id, dp)
	}

	cp.Run(250 * time.Millisecond)
	wg.Wait()
	close(results)

	byID := map[string]time.Duration{}
	for r := range results {
		byID[r.id] = r.elapsed
		fmt.Printf("%-12s finished %d getattrs in %v (%.0f ops/s achieved)\n",
			r.id, opsPerJob, r.elapsed.Round(time.Millisecond),
			float64(opsPerJob)/r.elapsed.Seconds())
	}
	ratio := byID["best-effort"].Seconds() / byID["production"].Seconds()
	fmt.Printf("\nbest-effort took %.1fx as long as production (reservations were 1:3)\n", ratio)
	fmt.Println("the low-priority job pays with time, exactly as job1 does in Fig. 5.")
}
