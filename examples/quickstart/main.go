// Quickstart: embed PADLL into an application in three steps —
// build a data plane over your mounts, install a QoS rule, and do I/O
// through the interposed client. Requests to the controlled mount are
// classified and rate limited; everything else passes straight through.
package main

import (
	"fmt"
	"log"
	"time"

	"padll"
	"padll/internal/clock"
	"padll/internal/localfs"
	"padll/internal/pfs"
)

func main() {
	// Backends: a simulated Lustre PFS (the shared, protected resource)
	// and a node-local file system (not rate limited).
	clk := clock.NewReal()
	lustre := pfs.New(clk, pfs.Config{})
	local := localfs.New(clk)

	// Step 1: the data plane interposes on both mounts; only /lustre is
	// controlled.
	dp, err := padll.NewDataPlane(
		padll.JobInfo{JobID: "quickstart-job", User: "demo", PID: 1, Hostname: "node-1"},
		padll.MountPFS("/lustre", lustre),
		padll.MountLocal("/", local),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer dp.Close()

	// Step 2: a QoS rule, in the administrator DSL — throttle all
	// metadata operations of this job to 2000 ops/s.
	rule, err := padll.ParseRule("limit id:meta class:metadata rate:2k burst:50")
	if err != nil {
		log.Fatal(err)
	}
	dp.ApplyRule(rule)

	// Step 3: do I/O through the interposed client. The calls below are
	// ordinary POSIX; the shim classifies and throttles them invisibly.
	c := dp.Client()
	start := clk.Now()
	for i := 0; i < 1000; i++ {
		path := fmt.Sprintf("/lustre/dataset/file-%04d", i)
		if i == 0 {
			if err := c.Mkdir("/lustre/dataset", 0o755); err != nil {
				log.Fatal(err)
			}
		}
		fd, err := c.Open(path, padll.OCreate|padll.OWrOnly, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := c.Write(fd, []byte("hello, lustre")); err != nil {
			log.Fatal(err)
		}
		if err := c.Close(fd); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := clk.Now().Sub(start)

	// Node-local scratch I/O resolves to the uncontrolled mount and is
	// forwarded without throttling.
	fd, err := c.Creat("/scratch-notes.txt", 0o644)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.Write(fd, []byte("not rate limited")); err != nil {
		log.Fatal(err)
	}
	c.Close(fd)

	// 1000 files need ~2000 metadata ops (open+close); at 2000 ops/s the
	// loop takes about a second — the rule at work.
	fmt.Printf("created 1000 files in %v (throttled to 2000 metadata ops/s)\n",
		elapsed.Round(time.Millisecond))

	stats := dp.Stats()
	for _, q := range stats.Queues {
		fmt.Printf("queue %q: admitted %d metadata requests under a %.0f ops/s limit\n",
			q.RuleID, q.Total, q.Limit)
	}
	is := dp.InterceptionStats()
	fmt.Printf("intercepted %d calls total: %d controlled (PFS), %d bypassed (local)\n",
		is.Intercepted, is.Controlled, is.Bypassed)
	fmt.Printf("PFS metadata server served %d operations\n", lustre.Stats().MetadataOps)
}
