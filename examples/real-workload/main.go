// Real-workload onramp: an UNMODIFIED fs.WalkDir application — the
// walk-everything-stat-everything pattern of build tools, linters and
// backup scanners — running over a real OS directory through PADLL's
// data plane. The program never calls a PADLL API after setup: it walks
// a plain fs.FS. Underneath, every readdir, getattr, open and read is
// classified and rate limited before reaching the kernel.
//
// Three runs over the same tree make the point:
//
//  1. direct os.DirFS (no interposition) — the baseline;
//  2. through the bridge with no rules — the passthrough overhead,
//     the reproduction of the paper's §IV-A claim;
//  3. through the bridge with a metadata cap — the stat storm visibly
//     paced, while the walker code is byte-for-byte the same.
package main

import (
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"time"

	"padll"
)

// buildTree fabricates a small source-tree-shaped workload on disk.
func buildTree(root string) (files int, err error) {
	for p := 0; p < 8; p++ {
		pkg := filepath.Join(root, fmt.Sprintf("pkg%02d", p))
		if err := os.MkdirAll(filepath.Join(pkg, "internal"), 0o755); err != nil {
			return 0, err
		}
		for f := 0; f < 25; f++ {
			body := []byte(fmt.Sprintf("// file %d in %s\npackage pkg\n", f, pkg))
			for _, dir := range []string{pkg, filepath.Join(pkg, "internal")} {
				name := filepath.Join(dir, fmt.Sprintf("src%03d.go", f))
				if err := os.WriteFile(name, body, 0o644); err != nil {
					return 0, err
				}
				files++
			}
		}
	}
	return files, nil
}

// scan is the "application": stock fs.WalkDir + a stat per file — it
// knows nothing about PADLL and receives nothing but an fs.FS.
func scan(fsys fs.FS) (files int, bytes int64, err error) {
	err = fs.WalkDir(fsys, ".", func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		info, err := d.Info() // one getattr per file: the stat storm
		if err != nil {
			return err
		}
		files++
		bytes += info.Size()
		return nil
	})
	return files, bytes, err
}

func timeScan(label string, fsys fs.FS) time.Duration {
	start := time.Now() //lint:allow clockcheck measuring real kernel I/O needs the wall clock
	files, bytes, err := scan(fsys)
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	elapsed := time.Since(start) //lint:allow clockcheck measuring real kernel I/O needs the wall clock
	fmt.Printf("  %-28s %5d files, %6d bytes, %8v\n", label, files, bytes, elapsed.Round(time.Microsecond))
	return elapsed
}

func main() {
	root, err := os.MkdirTemp("", "padll-real-workload-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	files, err := buildTree(root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d files under %s\n\n", files, root)

	// 1. Baseline: the application on the kernel directly.
	fmt.Println("run 1 — direct OS access (no interposition):")
	direct := timeScan("os.DirFS", os.DirFS(root))

	// The onramp: a real-OS backend mounted as the controlled file
	// system of an ordinary PADLL data plane.
	backend, err := padll.NewOSBackend(root)
	if err != nil {
		log.Fatal(err)
	}
	dp, err := padll.NewDataPlane(
		padll.JobInfo{JobID: "nightly-build", User: "ci", PID: os.Getpid(), Hostname: "node-1"},
		padll.MountPFS("/", backend),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer dp.Close()

	// 2. Passthrough: same application, same tree, now through
	// app -> io/fs -> vfs -> shim -> router -> osfs -> kernel.
	fmt.Println("\nrun 2 — through the data plane, no rules (passthrough):")
	bridged := timeScan("padll bridge", dp.FS())
	fmt.Printf("  interposition overhead: %.1fx over direct access\n",
		float64(bridged)/float64(direct))

	// 3. Throttled: the administrator caps this job's metadata rate.
	// The walker binary is unchanged; only the rule differs.
	rule, err := padll.ParseRule("limit id:meta class:metadata rate:2k burst:100")
	if err != nil {
		log.Fatal(err)
	}
	dp.ApplyRule(rule)
	fmt.Println("\nrun 3 — same application under 'limit class:metadata rate:2k':")
	throttled := timeScan("padll bridge + rule", dp.FS())

	st := dp.Stats()
	var ruled int64
	for _, q := range st.Queues {
		ruled += q.Total
	}
	fmt.Printf("\nstage throttled %d requests; the capped run took %.1fx the uncapped run\n",
		ruled, float64(throttled)/float64(bridged))
	fmt.Println("the application never changed — only the boundary under it did")
}
