// Scheduler-driven cluster: the full deployment story. A batch scheduler
// launches jobs onto compute nodes; each job start spawns one PADLL data
// plane per assigned node (as LD_PRELOAD would in the paper's prototype)
// and registers it with the control plane under the scheduler's job-ID;
// job completion tears the stages down. The control plane orchestrates
// every job holistically with proportional sharing while the jobs run
// metadata loops against their node-local file systems.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"padll"
	"padll/internal/clock"
	"padll/internal/localfs"
	"padll/internal/sched"
)

func main() {
	clk := clock.NewReal()
	cp := padll.NewControlPlane(
		padll.WithAlgorithm(padll.ProportionalShare()),
		padll.WithClusterLimit(40_000),
	)
	defer cp.Stop()

	var mu sync.Mutex
	planes := map[string][]*padll.DataPlane{}
	var stop atomic.Bool
	var workers sync.WaitGroup

	hooks := sched.Hooks{
		Start: func(j *sched.Job) {
			mu.Lock()
			defer mu.Unlock()
			fmt.Printf("scheduler: %s started on %v\n", j.ID, j.AssignedNodes)
			for _, node := range j.AssignedNodes {
				backend := localfs.New(clk)
				dp, err := padll.NewDataPlane(
					padll.JobInfo{JobID: j.ID, User: j.User, Hostname: node},
					padll.MountPFS("/pfs", backend),
				)
				if err != nil {
					log.Fatal(err)
				}
				if err := cp.AttachLocal(dp); err != nil {
					log.Fatal(err)
				}
				planes[j.ID] = append(planes[j.ID], dp)

				// The application instance: a metadata-heavy loop.
				workers.Add(1)
				go func(dp *padll.DataPlane) {
					defer workers.Done()
					c := dp.Client()
					fd, err := c.Creat("/pfs/probe", 0o644)
					if err != nil {
						return
					}
					c.Close(fd)
					for !stop.Load() {
						if _, err := c.GetAttr("/pfs/probe"); err != nil {
							return // stage torn down: the job ended
						}
					}
				}(dp)
			}
		},
		End: func(j *sched.Job) {
			mu.Lock()
			defer mu.Unlock()
			for _, dp := range planes[j.ID] {
				cp.DetachLocal(dp)
				// The job is over; nothing to do with a close error here.
				_ = dp.Close()
			}
			delete(planes, j.ID)
			fmt.Printf("scheduler: %s completed\n", j.ID)
		},
	}

	scheduler := sched.New(clk, 4, hooks)
	cp.Run(500 * time.Millisecond)

	// Submit a mix: a wide job, then two small ones (one backfills).
	scheduler.Submit(sched.Spec{ID: "wide", User: "alice", Nodes: 3, Walltime: 4 * time.Second})
	scheduler.Submit(sched.Spec{ID: "narrow-1", User: "bob", Nodes: 1, Walltime: 6 * time.Second})
	scheduler.Submit(sched.Spec{ID: "queued", User: "carol", Nodes: 2, Walltime: 3 * time.Second})
	cp.SetReservation("wide", 20_000)
	cp.SetReservation("narrow-1", 10_000)
	cp.SetReservation("queued", 10_000)

	for t := 1; t <= 8; t++ {
		clk.Sleep(time.Second)
		scheduler.Tick() // expire walltimes, start queued jobs
		snaps := cp.Collect()
		sort.Slice(snaps, func(i, j int) bool { return snaps[i].JobID < snaps[j].JobID })
		alloc := cp.LastAllocation()
		fmt.Printf("t=%ds queue=%d idle=%d\n", t, scheduler.QueueLength(), scheduler.IdleNodes())
		for _, s := range snaps {
			fmt.Printf("   %-9s stages=%d demand %8.0f/s allocated %8.0f/s served %8.0f/s\n",
				s.JobID, s.Stages, s.Demand, alloc[s.JobID], s.Throughput)
		}
	}

	stop.Store(true)
	workers.Wait()
	fmt.Println("\nnote: 'queued' waited for nodes, then inherited QoS control the")
	fmt.Println("moment the scheduler started it — no application changes anywhere.")
}
