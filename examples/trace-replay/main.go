// Trace replay: the paper's Fig. 4 scenario in miniature. A synthetic
// ABCI-like metadata trace is replayed against a PADLL-interposed local
// file system (one thread per op type, time compressed 60x, rates halved)
// while the administrator changes the static metadata limit mid-run:
// first generous, then aggressive, then lifted — producing the capped
// plateau and the backlog catch-up overshoot of the paper's figure.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"padll"
	"padll/internal/clock"
	"padll/internal/localfs"
	"padll/internal/posix"
	"padll/internal/trace"
)

func main() {
	// A 12-minute slice of the single-MDT trace: 12 seconds of replay.
	full := trace.SingleMDT(trace.PFSALike(7))
	tr := full.Slice(3000, 3012).Filter(posix.OpOpen, posix.OpClose, posix.OpGetAttr, posix.OpRename)
	mean := trace.Analyze(tr).MeanTotal / 2 // replayed at half rate
	fmt.Printf("workload: 4 op types, mean demand ≈ %.0f ops/s after scaling\n", mean)

	clk := clock.NewReal()
	backend := localfs.New(clk)
	dp, err := padll.NewDataPlane(
		padll.JobInfo{JobID: "replay", User: "demo", Hostname: "node-1"},
		padll.MountPFS("/", backend),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer dp.Close()

	// The metadata-class queue, initially unlimited.
	rule, _ := padll.ParseRule("limit id:meta class:metadata rate:unlimited")
	dp.ApplyRule(rule)

	w := &trace.Workload{
		Ctl:   dp.Client(),
		Raw:   dp.RawClient(), // below the shim, same descriptor namespace
		Dir:   "/replay",
		Files: 64,
	}
	if err := w.Prepare(); err != nil {
		log.Fatal(err)
	}

	r := &trace.Replayer{
		Trace:     tr,
		Submit:    w.Submit,
		Accel:     60,  // 1s of replay covers 1min of trace
		RateScale: 0.5, // half rate, as in the paper
		Window:    time.Second,
	}

	// The administrator's schedule: cap aggressively at t=4s, lift at t=8s.
	metaRule := padll.Rule{
		ID:    "meta",
		Match: padll.Matcher{Classes: []padll.Class{padll.ClassMetadata}},
	}
	//lint:allow leakcheck bounded administrator script: two sleeps then returns, and main outlives the 12s replay it paces
	go func() {
		clk.Sleep(4 * time.Second)
		metaRule.Rate = mean * 0.3
		dp.ApplyRule(metaRule)
		fmt.Printf("t=4s  administrator caps metadata at %.0f ops/s (0.3x demand)\n", metaRule.Rate)
		clk.Sleep(4 * time.Second)
		metaRule.Rate = padll.Unlimited
		dp.ApplyRule(metaRule)
		fmt.Println("t=8s  administrator lifts the cap — watch the backlog drain")
	}()

	start := clk.Now()
	if err := r.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay finished in %v\n\n", clk.Now().Sub(start).Round(time.Millisecond))

	// Per-second aggregate achieved rate: plateau during the cap, spike
	// above demand right after it is lifted.
	agg := map[int]float64{}
	maxSec := 0
	for _, op := range tr.Ops {
		s := r.Series(op)
		if s == nil || s.Len() == 0 {
			continue
		}
		t0 := s.Points[0].T
		for _, p := range s.Points {
			sec := int(p.T.Sub(t0).Seconds())
			agg[sec] += p.Value
			if sec > maxSec {
				maxSec = sec
			}
		}
	}
	fmt.Println("second  achieved ops/s")
	for sec := 0; sec <= maxSec; sec++ {
		bar := int(agg[sec] / mean * 20)
		if bar > 60 {
			bar = 60
		}
		fmt.Printf("%4d    %8.0f %s\n", sec, agg[sec], repeat('#', bar))
	}
}

func repeat(c byte, n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
