// Multi-job fairness: three concurrent jobs with different reservations
// share one metadata budget under the paper's Proportional Sharing
// control algorithm. The control plane collects demand from every stage
// each second and retunes the per-job rates: reserved rates are
// guaranteed, leftover rate flows to the jobs that can use it — watch the
// allocations shift as the light job goes idle.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"padll"
	"padll/internal/clock"
	"padll/internal/localfs"
)

const clusterLimit = 30_000 // aggregate metadata ops/s budget

func main() {
	clk := clock.NewReal()
	cp := padll.NewControlPlane(
		padll.WithAlgorithm(padll.ProportionalShare()),
		padll.WithClusterLimit(clusterLimit),
	)
	defer cp.Stop()

	// Three jobs with 1:2:3 reservations.
	jobs := []struct {
		id          string
		reservation float64
	}{
		{"dl-training", 5_000},
		{"analytics", 10_000},
		{"checkpoint", 15_000},
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for _, j := range jobs {
		backend := localfs.New(clk)
		dp, err := padll.NewDataPlane(
			padll.JobInfo{JobID: j.id, User: "demo", Hostname: "node-" + j.id},
			padll.MountPFS("/pfs", backend),
		)
		if err != nil {
			log.Fatal(err)
		}
		defer dp.Close()
		cp.SetReservation(j.id, j.reservation)
		if err := cp.AttachLocal(dp); err != nil {
			log.Fatal(err)
		}

		// Each job hammers getattr as fast as its queue admits. The
		// "checkpoint" job goes idle halfway through, freeing its share.
		wg.Add(1)
		go func(id string, dp *padll.DataPlane) {
			defer wg.Done()
			c := dp.Client()
			fd, err := c.Creat("/pfs/probe", 0o644)
			if err != nil {
				log.Fatal(err)
			}
			c.Close(fd)
			idleAfter := clk.Now().Add(3 * time.Second)
			for !stop.Load() {
				if id == "checkpoint" && clk.Now().After(idleAfter) {
					clk.Sleep(50 * time.Millisecond) // idle: ~no demand
					continue
				}
				c.GetAttr("/pfs/probe")
			}
		}(j.id, dp)
	}

	// Feedback loop: collect → allocate → push, every second.
	cp.Run(time.Second)

	for round := 1; round <= 6; round++ {
		clk.Sleep(time.Second)
		alloc := cp.LastAllocation()
		snaps := cp.Collect()
		sort.Slice(snaps, func(i, j int) bool { return snaps[i].JobID < snaps[j].JobID })
		fmt.Printf("t=%ds\n", round)
		for _, s := range snaps {
			fmt.Printf("  %-12s reserved %6.0f  demand %8.0f/s  allocated %8.0f/s  served %8.0f/s\n",
				s.JobID, s.Reservation, s.Demand, alloc[s.JobID], s.Throughput)
		}
	}

	stop.Store(true)
	wg.Wait()
	fmt.Println("\nnote how 'checkpoint' going idle after t=3s releases its 15k")
	fmt.Println("reservation's unused share to the two busy jobs, while its own")
	fmt.Println("allocation never drops below the guaranteed floor.")
}
