package padll_test

// End-to-end integration of the command-line tools: build every binary,
// generate a trace, replay it under a rule, run the benchmarks, and
// drive a live controller + stage + padll-ctl session over TCP — the
// two-terminal demo from the README, executed as a test.

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuffer is an io.Writer safe to read while a child process writes.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// buildTools compiles every cmd/ binary into a temp dir once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	tools := []string{
		"padll-tracegen", "padll-replayer", "padll-ior",
		"padll-mdtest", "padll-ctl", "padll-controller", "padll-experiments",
	}
	for _, tool := range tools {
		out, err := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, buf.String())
	}
	return buf.String()
}

func TestCommandLineToolsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bins := buildTools(t)
	work := t.TempDir()

	// 1. Generate a small single-MDT trace.
	traceFile := filepath.Join(work, "trace.csv")
	out := run(t, filepath.Join(bins, "padll-tracegen"),
		"-days", "0.02", "-mdt", "-seed", "7", "-out", traceFile, "-stats")
	if _, err := os.Stat(traceFile); err != nil {
		t.Fatalf("trace file missing: %v\n%s", err, out)
	}

	// 2. Replay it through a throttled stack for a couple of seconds.
	out = run(t, filepath.Join(bins, "padll-replayer"),
		"-trace", traceFile, "-duration", "2s",
		"-rule", "limit id:meta class:metadata rate:5k")
	if !strings.Contains(out, "installed") || !strings.Contains(out, "done in") {
		t.Errorf("replayer output unexpected:\n%s", out)
	}
	if !strings.Contains(out, "queue meta") {
		t.Errorf("replayer did not report the throttle queue:\n%s", out)
	}

	// 3. IOR and mdtest benchmarks complete and report.
	out = run(t, filepath.Join(bins, "padll-ior"),
		"-tasks", "2", "-transfer", "64k", "-block", "1m", "-segments", "1", "-mode", "writeread")
	if !strings.Contains(out, "write:") || !strings.Contains(out, "read:") {
		t.Errorf("ior output unexpected:\n%s", out)
	}
	out = run(t, filepath.Join(bins, "padll-mdtest"), "-ranks", "2", "-files", "50", "-dirs", "2")
	if !strings.Contains(out, "file-create") || !strings.Contains(out, "dir-remove") {
		t.Errorf("mdtest output unexpected:\n%s", out)
	}

	// 4. Live control plane: controller serves; a replayer stage
	// registers; padll-ctl inspects and retunes it.
	controller := exec.Command(filepath.Join(bins, "padll-controller"),
		"-listen", "127.0.0.1:17070", "-algorithm", "proportional",
		"-limit", "20000", "-reserve", "replay-job=5k", "-report", "0",
		"-http", "127.0.0.1:17090")
	var ctlOut lockedBuffer
	controller.Stdout = &ctlOut
	controller.Stderr = &ctlOut
	if err := controller.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		controller.Process.Kill()
		controller.Wait()
	}()
	waitForOutput(t, &ctlOut, "registrar on", 5*time.Second)

	replayer := exec.Command(filepath.Join(bins, "padll-replayer"),
		"-trace", traceFile, "-duration", "8s",
		"-serve", "127.0.0.1:17171", "-controller", "127.0.0.1:17070")
	var repOut lockedBuffer
	replayer.Stdout = &repOut
	replayer.Stderr = &repOut
	if err := replayer.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		replayer.Process.Kill()
		replayer.Wait()
	}()
	waitForOutput(t, &repOut, "stage control service on", 5*time.Second)

	ctl := filepath.Join(bins, "padll-ctl")
	out = run(t, ctl, "-stage", "127.0.0.1:17171", "ping")
	if !strings.Contains(out, "replay-job") {
		t.Errorf("ctl ping output:\n%s", out)
	}
	// Give the controller a loop iteration to install the managed queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		out = run(t, ctl, "-stage", "127.0.0.1:17171", "stats")
		if strings.Contains(out, "padll-control") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("managed queue never appeared:\n%s", out)
		}
		time.Sleep(200 * time.Millisecond)
	}
	// Apply an extra administrator rule and retune it.
	out = run(t, ctl, "-stage", "127.0.0.1:17171", "apply", "limit id:open-cap op:open rate:1k")
	if !strings.Contains(out, "applied") {
		t.Errorf("ctl apply output:\n%s", out)
	}
	out = run(t, ctl, "-stage", "127.0.0.1:17171", "set-rate", "open-cap", "2k")
	if !strings.Contains(out, "2000") {
		t.Errorf("ctl set-rate output:\n%s", out)
	}
	out = run(t, ctl, "-stage", "127.0.0.1:17171", "remove", "open-cap")
	if !strings.Contains(out, "removed") {
		t.Errorf("ctl remove output:\n%s", out)
	}

	// 5. The controller's HTTP monitor reports the job's allocation once
	// the feedback loop has run (first tick lands within a second).
	deadline = time.Now().Add(5 * time.Second)
	for {
		monBody := httpGetWithRetry(t, "http://127.0.0.1:17090/api/overview", 5*time.Second)
		if strings.Contains(monBody, "replay-job") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("monitor overview never showed the job's allocation:\n%s", monBody)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// TestControllerCrashEndToEnd is the failure-model demo over real TCP
// (DESIGN.md §8): a controller with Priority reservations drives two
// replayer stages; the controller is SIGKILLed mid-run. The stages must
// freeze their last-pushed limits (observable live via padll-ctl and in
// the final queue report) and account nonzero degraded time.
func TestControllerCrashEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bins := buildTools(t)

	controller := exec.Command(filepath.Join(bins, "padll-controller"),
		"-listen", "127.0.0.1:17270", "-algorithm", "priority",
		"-limit", "20000", "-reserve", "job-a=4k", "-reserve", "job-b=6k",
		"-interval", "200ms", "-report", "0")
	var ctlOut lockedBuffer
	controller.Stdout = &ctlOut
	controller.Stderr = &ctlOut
	if err := controller.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		controller.Process.Kill()
		controller.Wait()
	}()
	waitForOutput(t, &ctlOut, "registrar on", 5*time.Second)

	// Two stages, one per job, each heartbeating the controller.
	type stageProc struct {
		job, addr, rate string
		cmd             *exec.Cmd
		out             *lockedBuffer
	}
	stages := []*stageProc{
		{job: "job-a", addr: "127.0.0.1:17271", rate: "4000"},
		{job: "job-b", addr: "127.0.0.1:17272", rate: "6000"},
	}
	for _, s := range stages {
		s.out = &lockedBuffer{}
		s.cmd = exec.Command(filepath.Join(bins, "padll-replayer"),
			"-synthetic", "-seed", "7", "-duration", "12s",
			"-job", s.job, "-serve", s.addr,
			"-controller", "127.0.0.1:17270", "-heartbeat", "150ms")
		s.cmd.Stdout = s.out
		s.cmd.Stderr = s.out
		if err := s.cmd.Start(); err != nil {
			t.Fatal(err)
		}
		defer func(c *exec.Cmd) {
			c.Process.Kill()
			c.Wait()
		}(s.cmd)
	}
	for _, s := range stages {
		waitForOutput(t, s.out, "stage control service on", 5*time.Second)
	}

	// Wait until the control loop has tuned both stages to their
	// reservations, and remember the managed-queue line verbatim.
	ctl := filepath.Join(bins, "padll-ctl")
	before := map[string]string{}
	for _, s := range stages {
		deadline := time.Now().Add(5 * time.Second)
		for {
			out := run(t, ctl, "-stage", s.addr, "stats")
			if line := controlLine(out); line != "" && strings.Contains(line, s.rate) {
				before[s.job] = line
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("stage %s never reached its reservation:\n%s", s.job, out)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	// Crash the controller mid-run, hard.
	if err := controller.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	controller.Wait()

	// Several heartbeat periods later the stages must still enforce the
	// exact limits the dead controller last pushed.
	time.Sleep(1 * time.Second)
	for _, s := range stages {
		out := run(t, ctl, "-stage", s.addr, "stats")
		if line := controlLine(out); line != before[s.job] {
			t.Errorf("stage %s limit drifted after controller death:\nbefore: %s\nafter:  %s",
				s.job, before[s.job], line)
		}
	}

	// Let the replay run out and check the summaries: nonzero degraded
	// time, and the managed queue still throttled to the frozen rate.
	for _, s := range stages {
		if err := s.cmd.Wait(); err != nil {
			t.Fatalf("replayer %s: %v\n%s", s.job, err, s.out.String())
		}
		out := s.out.String()
		if !strings.Contains(out, "controller degraded for") {
			t.Errorf("replayer %s reported no degraded time:\n%s", s.job, out)
		}
		if !strings.Contains(out, "queue padll-control") || !strings.Contains(out, s.rate+"/s") {
			t.Errorf("replayer %s lost its frozen managed queue (want %s/s):\n%s", s.job, s.rate, out)
		}
	}
}

// controlLine extracts the padll-control queue's limit=... token from
// ctl stats output (the rest of the line carries live counters).
func controlLine(statsOut string) string {
	for _, line := range strings.Split(statsOut, "\n") {
		if !strings.Contains(line, "padll-control") {
			continue
		}
		for _, tok := range strings.Fields(line) {
			if strings.HasPrefix(tok, "limit=") {
				return tok
			}
		}
	}
	return ""
}

// waitForOutput polls a process's captured output for a marker.
func waitForOutput(t *testing.T, buf *lockedBuffer, marker string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !strings.Contains(buf.String(), marker) {
		if time.Now().After(deadline) {
			t.Fatalf("never saw %q in output:\n%s", marker, buf.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// httpGetWithRetry fetches a URL, retrying while the server warms up.
func httpGetWithRetry(t *testing.T, url string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == 200 {
				return string(body)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s never succeeded: %v", url, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
